package frag

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/partition"
)

// testGraphs returns the generator shapes of the equivalence sweep:
// RMAT, chain, tree, grid.
func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":  graph.RMAT(8, 5, 42, graph.RMATOptions{NoSelfLoops: true}),
		"chain": graph.Chain(501),
		"tree":  graph.RandomTree(300, 7),
		"grid":  graph.Grid(13, 17, 50, 9),
	}
}

func testPartitions(t *testing.T, g *graph.Graph, workers int) map[string]*partition.Partition {
	t.Helper()
	hash, err := partition.Hash(g.NumVertices(), workers)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := partition.Greedy(g, workers)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*partition.Partition{"hash": hash, "greedy": greedy}
}

func TestAddrPackRoundTrip(t *testing.T) {
	cases := []struct {
		worker int
		local  uint32
	}{
		{0, 0}, {1, 1}, {7, 123456}, {65534, 0xFFFFFFFF}, {255, 1 << 31},
	}
	for _, c := range cases {
		a := Pack(c.worker, c.local)
		if a.Worker() != c.worker || a.Local() != c.local {
			t.Errorf("Pack(%d,%d) round-tripped to (%d,%d)", c.worker, c.local, a.Worker(), a.Local())
		}
	}
}

func TestAddrOrderIsWorkerLocalOrder(t *testing.T) {
	// raw Addr order must equal lexicographic (worker, local) order —
	// the ScatterCombine presort depends on it
	if !(Pack(0, 0xFFFFFFFF) < Pack(1, 0)) {
		t.Error("addr order broken across workers")
	}
	if !(Pack(3, 5) < Pack(3, 6)) {
		t.Error("addr order broken within a worker")
	}
}

// Every packed adjacency entry must round-trip against the partition's
// Owner/LocalIndex for every generator shape under both placements.
func TestFragmentAddressesMatchPartition(t *testing.T) {
	for gname, g := range testGraphs() {
		for _, workers := range []int{1, 3, 8} {
			for pname, p := range testPartitions(t, g, workers) {
				fs := Build(g, p)
				if fs.NumWorkers() != workers {
					t.Fatalf("%s/%s: %d fragments for %d workers", gname, pname, fs.NumWorkers(), workers)
				}
				totalVerts, totalEdges := 0, 0
				for w := 0; w < workers; w++ {
					f := fs.Frag(w)
					if f.WorkerID() != w || f.NumWorkers() != workers || f.NumVertices() != g.NumVertices() {
						t.Fatalf("%s/%s: fragment %d misdescribes itself", gname, pname, w)
					}
					if f.LocalCount() != p.LocalCount(w) {
						t.Fatalf("%s/%s w%d: local count %d want %d", gname, pname, w, f.LocalCount(), p.LocalCount(w))
					}
					totalVerts += f.LocalCount()
					totalEdges += f.NumEdges()
					for li := 0; li < f.LocalCount(); li++ {
						id := f.GlobalID(li)
						if id != p.GlobalID(w, li) {
							t.Fatalf("%s/%s w%d li%d: global id %d want %d", gname, pname, w, li, id, p.GlobalID(w, li))
						}
						nbrs := g.Neighbors(id)
						addrs := f.Neighbors(li)
						if len(addrs) != len(nbrs) || f.OutDegree(li) != len(nbrs) {
							t.Fatalf("%s/%s w%d li%d: degree %d want %d", gname, pname, w, li, len(addrs), len(nbrs))
						}
						for i, v := range nbrs {
							a := addrs[i]
							if a.Worker() != p.Owner(v) || int(a.Local()) != p.LocalIndex(v) {
								t.Fatalf("%s/%s w%d edge %d->%d: addr (%d,%d) want (%d,%d)",
									gname, pname, w, id, v, a.Worker(), a.Local(), p.Owner(v), p.LocalIndex(v))
							}
							if a != Of(p, v) {
								t.Fatalf("%s/%s: Of disagrees with packed adjacency", gname, pname)
							}
						}
						if g.Weighted() {
							ws := f.NeighborWeights(li)
							want := g.NeighborWeights(id)
							for i := range want {
								if ws[i] != want[i] {
									t.Fatalf("%s/%s w%d li%d: weight %d want %d", gname, pname, w, li, ws[i], want[i])
								}
							}
						}
					}
				}
				if totalVerts != g.NumVertices() || totalEdges != g.NumEdges() {
					t.Fatalf("%s/%s: fragments cover %d vertices / %d edges, want %d / %d",
						gname, pname, totalVerts, totalEdges, g.NumVertices(), g.NumEdges())
				}
			}
		}
	}
}

func TestFragmentWeightedFlag(t *testing.T) {
	grid := graph.Grid(5, 5, 10, 1)
	p := partition.MustHash(grid.NumVertices(), 2)
	fs := Build(grid, p)
	if !fs.Frag(0).Weighted() {
		t.Error("weighted grid fragment lost its weights")
	}
	chain := graph.Chain(10)
	fs2 := Build(chain, partition.MustHash(chain.NumVertices(), 2))
	if fs2.Frag(0).Weighted() {
		t.Error("unweighted chain fragment claims weights")
	}
	defer func() {
		if recover() == nil {
			t.Error("NeighborWeights on unweighted fragment did not panic")
		}
	}()
	fs2.Frag(0).NeighborWeights(0)
}

func TestFragmentsBytes(t *testing.T) {
	g := graph.Chain(100)
	fs := Build(g, partition.MustHash(g.NumVertices(), 4))
	if fs.Bytes() <= 0 {
		t.Error("Bytes() reported nothing resident")
	}
}

// The derived transpose must match fragments built from graph.Reverse
// edge-for-edge (as multisets per vertex), carry weights, and be cached.
func TestFragmentsReverse(t *testing.T) {
	for gname, g := range testGraphs() {
		p := partition.MustHash(g.NumVertices(), 4)
		fs := Build(g, p)
		rev := fs.Reverse()
		if fs.Reverse() != rev {
			t.Fatalf("%s: transpose not cached", gname)
		}
		want := Build(g.Reverse(), p)
		for w := 0; w < 4; w++ {
			rf, wf := rev.Frag(w), want.Frag(w)
			if rf.NumEdges() != wf.NumEdges() || rf.LocalCount() != wf.LocalCount() {
				t.Fatalf("%s w%d: shape %d/%d want %d/%d", gname, w, rf.NumEdges(), rf.LocalCount(), wf.NumEdges(), wf.LocalCount())
			}
			if rf.Weighted() != wf.Weighted() {
				t.Fatalf("%s w%d: weighted mismatch", gname, w)
			}
			for li := 0; li < rf.LocalCount(); li++ {
				got := map[[2]uint64]int{}
				for i, a := range rf.Neighbors(li) {
					k := [2]uint64{uint64(a), 0}
					if rf.Weighted() {
						k[1] = uint64(uint32(rf.NeighborWeights(li)[i]))
					}
					got[k]++
				}
				for i, a := range wf.Neighbors(li) {
					k := [2]uint64{uint64(a), 0}
					if wf.Weighted() {
						k[1] = uint64(uint32(wf.NeighborWeights(li)[i]))
					}
					got[k]--
					if got[k] == 0 {
						delete(got, k)
					}
					_ = i
				}
				if len(got) != 0 {
					t.Fatalf("%s w%d li%d: reverse adjacency differs: %v", gname, w, li, got)
				}
			}
		}
	}
}
