// Package frag gives each worker a self-contained, shared-nothing view
// of the graph: a per-worker CSR fragment whose adjacency entries are
// packed pre-resolved addresses (destination worker + destination local
// index in one 64-bit word) instead of global vertex ids.
//
// The paper's architecture (Fig. 2) is shared-nothing — each worker owns
// its vertices and exchanges binary buffers — but handing every worker
// the global CSR plus the global Owner()/LocalIndex() arrays costs two
// dependent random-array lookups per edge in every scatter, propagation
// and mirror loop. A Fragment pays those lookups exactly once, at build
// time; from then on a superstep's neighbor iteration is a sequential
// scan of packed addresses that channels consume without ever touching
// the global graph or the partition. This also makes each worker's
// state self-contained, which is the structural prerequisite for moving
// workers into separate processes.
//
// Layout invariants (the packed-address "wire" format — fragments built
// from the same (graph, partition) pair on different nodes agree):
//
//   - Addr packs (worker, local) as worker<<32 | local. Sorting raw
//     Addr values therefore sorts by (worker, local), which is what the
//     ScatterCombine presort relies on.
//   - A fragment's adjacency preserves the edge order of the source CSR
//     within each vertex, and Weights (if present) stay parallel to Adj.
//   - Fragment local indices are exactly the partition's local indices:
//     Fragment.GlobalID(li) == Partition.GlobalID(worker, li).
package frag

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Addr is a packed pre-resolved vertex address: the owning worker in the
// high 32 bits and the dense local index on that worker in the low 32
// bits. The natural uint64 order equals (worker, local) order.
type Addr uint64

// Pack builds an Addr from an owner worker and a local index.
func Pack(worker int, local uint32) Addr {
	return Addr(uint64(worker)<<32 | uint64(local))
}

// Worker returns the owning worker.
func (a Addr) Worker() int { return int(a >> 32) }

// Local returns the dense local index on the owning worker.
func (a Addr) Local() uint32 { return uint32(a) }

// Of resolves v's packed address through the partition. This is the
// only place the (owner, localIndex) pair is looked up; hot loops read
// pre-resolved Addr values instead of calling it per edge.
func Of(p *partition.Partition, v graph.VertexID) Addr {
	return Pack(p.Owner(v), uint32(p.LocalIndex(v)))
}

// Fragment is one worker's shared-nothing slice of the graph: a CSR
// over the worker's local vertices whose adjacency entries are packed
// addresses, plus the local-to-global id map. It is immutable after
// Build and safe for concurrent readers.
type Fragment struct {
	worker      int
	numWorkers  int
	numVertices int // global vertex count

	offsets []uint64
	adj     []Addr
	weights []int32          // parallel to adj; nil if unweighted
	globals []graph.VertexID // local index -> global id (aliases the partition)
	counts  []int            // per-worker local vertex counts
}

// WorkerID returns the worker this fragment belongs to.
func (f *Fragment) WorkerID() int { return f.worker }

// NumWorkers returns the number of workers in the partition.
func (f *Fragment) NumWorkers() int { return f.numWorkers }

// NumVertices returns the global vertex count.
func (f *Fragment) NumVertices() int { return f.numVertices }

// LocalCount returns the number of vertices this fragment owns.
func (f *Fragment) LocalCount() int { return len(f.globals) }

// LocalCountOf returns the number of vertices worker w owns — fragment
// consumers size their dense per-destination staging without the
// partition.
func (f *Fragment) LocalCountOf(w int) int { return f.counts[w] }

// GlobalID returns the global id of local vertex li.
func (f *Fragment) GlobalID(li int) graph.VertexID { return f.globals[li] }

// OutDegree returns the out-degree of local vertex li.
func (f *Fragment) OutDegree(li int) int {
	return int(f.offsets[li+1] - f.offsets[li])
}

// Neighbors returns the pre-resolved addresses of local vertex li's
// out-neighbors. The slice aliases the fragment and must not be
// modified.
func (f *Fragment) Neighbors(li int) []Addr {
	return f.adj[f.offsets[li]:f.offsets[li+1]]
}

// Adj returns the fragment's whole packed adjacency array (all local
// vertices' neighbors concatenated in local-index order; vertex li owns
// the range summing the degrees before it). It aliases the fragment
// and must not be modified — consumers like the Propagation channel
// adopt it zero-copy.
func (f *Fragment) Adj() []Addr { return f.adj }

// AllWeights returns the weights parallel to Adj (nil if unweighted).
// It aliases the fragment and must not be modified.
func (f *Fragment) AllWeights() []int32 { return f.weights }

// NeighborWeights returns the weights parallel to Neighbors(li). It
// panics if the source graph was unweighted.
func (f *Fragment) NeighborWeights(li int) []int32 {
	if f.weights == nil {
		panic("frag: unweighted fragment")
	}
	return f.weights[f.offsets[li]:f.offsets[li+1]]
}

// Weighted reports whether edge weights are present.
func (f *Fragment) Weighted() bool { return f.weights != nil }

// NumEdges returns the number of edges stored in this fragment.
func (f *Fragment) NumEdges() int { return len(f.adj) }

// Fragments bundles the per-worker fragments of one (graph, partition)
// pair. Immutable after Build (the lazily derived transpose is built
// exactly once under its own sync.Once).
type Fragments struct {
	Part  *partition.Partition
	frags []*Fragment

	// DeriveHook, if set, is called with the byte size of any lazily
	// derived structure (currently the transpose) when it is built —
	// the catalog charges those bytes to its LRU budget.
	DeriveHook func(bytes int64)

	revOnce sync.Once
	rev     *Fragments
}

// Frag returns worker w's fragment.
func (fs *Fragments) Frag(w int) *Fragment { return fs.frags[w] }

// NumWorkers returns the worker count.
func (fs *Fragments) NumWorkers() int { return len(fs.frags) }

// Bytes approximates the resident size of all fragments (offsets, packed
// adjacency, weights; the globals slices alias the partition and are not
// counted twice).
func (fs *Fragments) Bytes() int64 {
	var b int64
	for _, f := range fs.frags {
		b += int64(len(f.offsets))*8 + int64(len(f.adj))*8 + int64(len(f.weights))*4
		b += int64(len(f.counts)) * 8
	}
	return b
}

// Reverse returns the fragments of the transpose graph under the same
// partition, derived once from the packed forward adjacency — no global
// reverse graph is ever materialized — and cached on the receiver, so
// SCC's backward propagation shares one transpose across all runs of a
// cached fragment set. Weights are carried over.
func (fs *Fragments) Reverse() *Fragments {
	fs.revOnce.Do(func() {
		m := len(fs.frags)
		rev := &Fragments{Part: fs.Part, frags: make([]*Fragment, m)}
		weighted := false
		for w, f := range fs.frags {
			rev.frags[w] = &Fragment{
				worker:      w,
				numWorkers:  m,
				numVertices: f.numVertices,
				offsets:     make([]uint64, f.LocalCount()+1),
				globals:     f.globals,
				counts:      f.counts,
			}
			weighted = weighted || f.weights != nil
		}
		// in-degree count, prefix sum, then one fill pass per edge
		for _, f := range fs.frags {
			for _, a := range f.adj {
				rev.frags[a.Worker()].offsets[a.Local()+1]++
			}
		}
		cursors := make([][]uint64, m)
		for w, rf := range rev.frags {
			for i := 1; i < len(rf.offsets); i++ {
				rf.offsets[i] += rf.offsets[i-1]
			}
			rf.adj = make([]Addr, rf.offsets[len(rf.offsets)-1])
			if weighted {
				rf.weights = make([]int32, len(rf.adj))
			}
			cur := make([]uint64, rf.LocalCount())
			copy(cur, rf.offsets[:rf.LocalCount()])
			cursors[w] = cur
		}
		for w, f := range fs.frags {
			for li := 0; li < f.LocalCount(); li++ {
				src := Pack(w, uint32(li))
				var ws []int32
				if f.weights != nil {
					ws = f.NeighborWeights(li)
				}
				for i, a := range f.Neighbors(li) {
					rf := rev.frags[a.Worker()]
					p := cursors[a.Worker()][a.Local()]
					cursors[a.Worker()][a.Local()]++
					rf.adj[p] = src
					if ws != nil {
						rf.weights[p] = ws[i]
					}
				}
			}
		}
		fs.rev = rev
		if fs.DeriveHook != nil {
			fs.DeriveHook(rev.Bytes())
		}
	})
	return fs.rev
}

// Build constructs the per-worker fragments of g under p. The global
// address table is resolved once (one Owner/LocalIndex pair per vertex),
// then the per-worker CSRs are filled in parallel, one goroutine per
// worker — load time is the only place the global graph and partition
// are consulted.
func Build(g *graph.Graph, p *partition.Partition) *Fragments {
	n := g.NumVertices()
	m := p.NumWorkers()

	// Pre-resolve every vertex's packed address once.
	addrOf := make([]Addr, n)
	for v := 0; v < n; v++ {
		addrOf[v] = Of(p, graph.VertexID(v))
	}
	counts := make([]int, m)
	for w := 0; w < m; w++ {
		counts[w] = p.LocalCount(w)
	}

	fs := &Fragments{Part: p, frags: make([]*Fragment, m)}
	var wg sync.WaitGroup
	for w := 0; w < m; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			locals := p.Locals(w)
			f := &Fragment{
				worker:      w,
				numWorkers:  m,
				numVertices: n,
				offsets:     make([]uint64, len(locals)+1),
				globals:     locals,
				counts:      counts,
			}
			var edges uint64
			for li, id := range locals {
				edges += uint64(g.OutDegree(id))
				f.offsets[li+1] = edges
			}
			f.adj = make([]Addr, edges)
			if g.Weighted() {
				f.weights = make([]int32, edges)
			}
			for li, id := range locals {
				base := f.offsets[li]
				nbrs := g.Neighbors(id)
				for i, v := range nbrs {
					f.adj[base+uint64(i)] = addrOf[v]
				}
				if f.weights != nil {
					copy(f.weights[base:base+uint64(len(nbrs))], g.NeighborWeights(id))
				}
			}
			fs.frags[w] = f
		}(w)
	}
	wg.Wait()
	return fs
}
