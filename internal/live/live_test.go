package live_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/live"
)

// edgeSet collects a graph's edges as a src<<32|dst -> weight map,
// failing on duplicate pairs (live graphs are simple per pair).
func edgeSet(t *testing.T, g *graph.Graph, allowDup bool) map[uint64]int32 {
	t.Helper()
	out := make(map[uint64]int32)
	for u := 0; u < g.NumVertices(); u++ {
		var ws []int32
		if g.Weighted() {
			ws = g.NeighborWeights(graph.VertexID(u))
		}
		for i, v := range g.Neighbors(graph.VertexID(u)) {
			k := uint64(u)<<32 | uint64(v)
			if _, dup := out[k]; dup && !allowDup {
				t.Fatalf("duplicate edge (%d,%d)", u, v)
			}
			if ws != nil {
				out[k] = ws[i]
			} else {
				out[k] = 0
			}
		}
	}
	return out
}

func TestMaterializeSemantics(t *testing.T) {
	base := graph.FromEdges(6, []graph.Edge{
		{Src: 0, Dst: 1, Weight: 5},
		{Src: 0, Dst: 1, Weight: 7}, // parallel copy, collapsed on first touch
		{Src: 1, Dst: 2, Weight: 3},
		{Src: 2, Dst: 3, Weight: 4},
		{Src: 3, Dst: 0, Weight: 9},
	}, true)
	batches := []live.Batch{
		{Ops: []live.Op{
			{Src: 0, Dst: 1, Weight: 9}, // upsert: both copies -> one edge w9
			{Src: 2, Dst: 3, Del: true}, // delete
			{Src: 4, Dst: 5, Weight: 2}, // fresh edge
			{Src: 1, Dst: 2, Del: true}, // deleted...
		}},
		{Ops: []live.Op{
			{Src: 1, Dst: 2, Weight: 8}, // ...then re-inserted: last write wins
			{Src: 7, Dst: 0, Weight: 1}, // grows the graph to 8 vertices
			{Src: 5, Dst: 5, Weight: 6}, // self loop insert
			{Src: 5, Dst: 5, Del: true}, // ...then deleted in the same epoch
		}},
	}
	got := live.Materialize(base, batches, true)
	if got.NumVertices() != 8 {
		t.Fatalf("vertices = %d, want 8 (grown by insert)", got.NumVertices())
	}
	want := map[uint64]int32{
		0<<32 | 1: 9,
		1<<32 | 2: 8,
		3<<32 | 0: 9,
		4<<32 | 5: 2,
		7<<32 | 0: 1,
	}
	gotSet := edgeSet(t, got, false)
	if len(gotSet) != len(want) {
		t.Fatalf("edge count %d, want %d (%v)", len(gotSet), len(want), gotSet)
	}
	for k, w := range want {
		if gw, ok := gotSet[k]; !ok || gw != w {
			t.Fatalf("edge (%d,%d): got (present=%v, w=%d), want w=%d", k>>32, uint32(k), ok, gw, w)
		}
	}
	// determinism: same inputs, same CSR byte-for-byte
	again := live.Materialize(base, batches, true)
	for i := range got.Adj {
		if got.Adj[i] != again.Adj[i] || got.Weights[i] != again.Weights[i] {
			t.Fatal("Materialize is not deterministic")
		}
	}
}

func TestMaterializeUntouchedOrderPreserved(t *testing.T) {
	base := graph.RMAT(6, 4, 3, graph.RMATOptions{NoSelfLoops: true})
	got := live.Materialize(base, []live.Batch{{Ops: []live.Op{{Src: 0, Dst: 1}}}}, false)
	// every vertex except 0 keeps its adjacency verbatim
	for u := 1; u < base.NumVertices(); u++ {
		b, g := base.Neighbors(graph.VertexID(u)), got.Neighbors(graph.VertexID(u))
		if len(b) != len(g) {
			t.Fatalf("vertex %d: degree %d -> %d", u, len(b), len(g))
		}
		for i := range b {
			if b[i] != g[i] {
				t.Fatalf("vertex %d: adjacency reordered", u)
			}
		}
	}
}

func TestApplyCompactPinRetire(t *testing.T) {
	base := graph.RMAT(7, 4, 11, graph.RMATOptions{NoSelfLoops: true})
	var retired []uint64
	var mu sync.Mutex
	lg, err := live.New(base, live.Options{
		Workers:         4,
		MaxDeltaOps:     1 << 30, // background compaction off: the test drives it
		MaxDeltaBatches: 1 << 30,
		OnRetire: func(seq uint64, bytes int64) {
			mu.Lock()
			retired = append(retired, seq)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	ep1 := lg.Pin()
	if ep1.Seq() != 1 {
		t.Fatalf("first epoch seq = %d", ep1.Seq())
	}
	v1, err := ep1.View("hash", false)
	if err != nil {
		t.Fatal(err)
	}
	edges1 := v1.Graph.NumEdges()

	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}}}); err != nil {
		t.Fatal(err)
	}
	if st := lg.Stats(); st.PendingBatches != 1 || st.PendingOps != 2 || st.Epoch != 1 {
		t.Fatalf("pending stats %+v", st)
	}
	lg.CompactNow()
	st := lg.Stats()
	if st.Epoch != 2 || st.PendingOps != 0 || st.Compactions != 1 || st.LiveEpochs != 2 {
		t.Fatalf("post-compaction stats %+v", st)
	}

	// the pinned epoch still serves its original snapshot
	if g := ep1.Graph(); g == nil || g.NumEdges() != edges1 {
		t.Fatalf("pinned epoch changed underneath the reader")
	}
	mu.Lock()
	n := len(retired)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("epoch retired while pinned")
	}

	bytesBefore := lg.Bytes()
	ep1.Release()
	mu.Lock()
	got := append([]uint64(nil), retired...)
	mu.Unlock()
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("retired = %v, want [1]", got)
	}
	if st := lg.Stats(); st.LiveEpochs != 1 || st.RetiredEpochs != 1 {
		t.Fatalf("post-release stats %+v", st)
	}
	if lg.Bytes() >= bytesBefore {
		t.Fatalf("retired epoch's bytes not released: %d -> %d", bytesBefore, lg.Bytes())
	}
	if ep1.Graph() != nil {
		t.Fatal("freed epoch still holds its graph")
	}

	// the new current epoch reflects the batch
	ep2 := lg.Pin()
	defer ep2.Release()
	set := edgeSet(t, ep2.Graph(), true)
	if _, ok := set[uint64(1)<<32|2]; !ok {
		t.Fatal("compacted epoch is missing the inserted edge")
	}
}

func TestBackgroundCompactionTriggers(t *testing.T) {
	base := graph.RMAT(6, 4, 5, graph.RMATOptions{NoSelfLoops: true})
	lg, err := live.New(base, live.Options{Workers: 4, MaxDeltaOps: 10, MaxDeltaBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()
	for i := 0; i < 6; i++ {
		if err := lg.Apply(live.Batch{Ops: []live.Op{
			{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1)},
			{Src: graph.VertexID(i + 1), Dst: graph.VertexID(i)},
		}}); err != nil {
			t.Fatal(err)
		}
	}
	// the threshold (10 ops) was crossed: the background compactor must
	// publish a new epoch eventually
	deadline := time.Now().Add(10 * time.Second)
	for lg.Stats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never ran: %+v", lg.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestApplyValidation(t *testing.T) {
	base := graph.Chain(10)
	lg, err := live.New(base, live.Options{Workers: 2, MaxVertices: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 5, Dst: 200}}}); err == nil {
		t.Fatal("expected vertex-bound error")
	}
	if err := lg.Apply(live.Batch{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	lg.Close()
	if err := lg.Apply(live.Batch{Ops: []live.Op{{Src: 1, Dst: 2}}}); err == nil {
		t.Fatal("expected closed error")
	}
	lg.Close() // idempotent

	und := graph.Undirectify(graph.Chain(5))
	if _, err := live.New(und, live.Options{}); err == nil {
		t.Fatal("expected undirected-base rejection")
	}
}

// TestConcurrentIngestCompactionAndReaders is the -race acceptance
// test of the epoch protocol: writers stream batches while the
// background compactor publishes epochs and readers pin snapshots and
// verify they are never torn. At quiesce every superseded epoch has
// been freed.
func TestConcurrentIngestCompactionAndReaders(t *testing.T) {
	base := graph.RMAT(9, 4, 17, graph.RMATOptions{NoSelfLoops: true})
	n := base.NumVertices()
	lg, err := live.New(base, live.Options{Workers: 4, MaxDeltaOps: 400, MaxDeltaBatches: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	const writers, readers, batchesPerWriter = 2, 3, 25
	var wg sync.WaitGroup
	var stop atomic.Bool
	for wr := 0; wr < writers; wr++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for b := 0; b < batchesPerWriter; b++ {
				var batch live.Batch
				for o := 0; o < 60; o++ {
					op := live.Op{
						Src: graph.VertexID(rng.Intn(n)),
						Dst: graph.VertexID(rng.Intn(n)),
						Del: rng.Intn(4) == 0,
					}
					batch.Ops = append(batch.Ops, op)
				}
				if err := lg.Apply(batch); err != nil {
					t.Errorf("apply: %v", err)
					return
				}
			}
		}(int64(1000 + wr))
	}
	readErrs := make(chan error, readers)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				ep := lg.Pin()
				g := ep.Graph()
				if g == nil {
					readErrs <- fmt.Errorf("pinned epoch already freed")
					ep.Release()
					return
				}
				// torn-graph checks: a consistent CSR has monotone
				// offsets ending exactly at the adjacency length, and
				// stays bit-identical while pinned
				nv := g.NumVertices()
				if int(g.Offsets[nv]) != len(g.Adj) {
					readErrs <- fmt.Errorf("epoch %d: offsets end %d != adj len %d", ep.Seq(), g.Offsets[nv], len(g.Adj))
					ep.Release()
					return
				}
				for u := 0; u < nv; u++ {
					if g.Offsets[u] > g.Offsets[u+1] {
						readErrs <- fmt.Errorf("epoch %d: offsets not monotone at %d", ep.Seq(), u)
						ep.Release()
						return
					}
				}
				if _, err := ep.View("hash", false); err != nil {
					readErrs <- fmt.Errorf("epoch %d view: %v", ep.Seq(), err)
					ep.Release()
					return
				}
				e1 := g.NumEdges()
				if e2 := ep.Graph().NumEdges(); e1 != e2 {
					readErrs <- fmt.Errorf("epoch %d changed while pinned: %d -> %d edges", ep.Seq(), e1, e2)
					ep.Release()
					return
				}
				ep.Release()
			}
		}()
	}

	// writers finish first, then stop the readers
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for wrDone := false; !wrDone; {
		select {
		case <-done:
			wrDone = true
		case err := <-readErrs:
			t.Fatal(err)
		default:
			if lg.Stats().Batches == writers*batchesPerWriter {
				stop.Store(true)
				wrDone = true
			}
		}
	}
	stop.Store(true)
	<-done
	close(readErrs)
	for err := range readErrs {
		t.Fatal(err)
	}

	lg.CompactNow() // fold any tail batches
	st := lg.Stats()
	if st.Compactions == 0 {
		t.Fatalf("no compaction ran: %+v", st)
	}
	if st.PendingOps != 0 || st.PendingBatches != 0 {
		t.Fatalf("pending deltas after final compaction: %+v", st)
	}
	// every reader released: all superseded epochs must be freed
	if st.LiveEpochs != 1 || st.RetiredEpochs != st.Compactions {
		t.Fatalf("epochs not retired: %+v", st)
	}
	ep := lg.Pin()
	defer ep.Release()
	if st.Bytes != ep.Bytes() {
		t.Fatalf("resident bytes %d != current epoch bytes %d", st.Bytes, ep.Bytes())
	}
}

func TestTextBatchRoundTrip(t *testing.T) {
	in := live.Batch{Ops: []live.Op{
		{Src: 1, Dst: 2, Weight: 7},
		{Src: 3, Dst: 4},
		{Src: 5, Dst: 6, Del: true},
	}}
	var sb strings.Builder
	if err := live.WriteTextBatch(&sb, in); err != nil {
		t.Fatal(err)
	}
	got, err := live.ParseTextBatch(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ops) != len(in.Ops) {
		t.Fatalf("ops %d, want %d", len(got.Ops), len(in.Ops))
	}
	for i := range in.Ops {
		if got.Ops[i] != in.Ops[i] {
			t.Fatalf("op %d: %+v != %+v", i, got.Ops[i], in.Ops[i])
		}
	}

	for _, bad := range []string{"1\n", "- 1\n", "x 2\n", "1 y\n", "1 2 z\n", "1 2 3 4\n"} {
		if _, err := live.ParseTextBatch(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseTextBatch(%q): expected error", bad)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	batches := []live.Batch{
		{Ops: []live.Op{{Src: 1, Dst: 2}, {Src: 2, Dst: 3, Del: true}}},
		{Ops: []live.Op{{Src: 4, Dst: 5, Weight: 9}}},
	}
	var sb strings.Builder
	if err := live.WriteStream(&sb, batches); err != nil {
		t.Fatal(err)
	}
	if chunks := live.SplitStream(sb.String()); len(chunks) != 2 {
		t.Fatalf("SplitStream: %d chunks, want 2", len(chunks))
	}
	got, err := live.ReadStream(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || len(got[0].Ops) != 2 || len(got[1].Ops) != 1 {
		t.Fatalf("ReadStream shape: %+v", got)
	}
	if got[1].Ops[0] != (live.Op{Src: 4, Dst: 5, Weight: 9}) {
		t.Fatalf("ReadStream op: %+v", got[1].Ops[0])
	}
}

// Close racing Apply: the compaction wake-up send and the channel
// close are both serialized under the graph mutex, so concurrent
// appliers during shutdown get a clean "closed" error, never a panic.
func TestApplyCloseRace(t *testing.T) {
	base := graph.Chain(50)
	lg, err := live.New(base, live.Options{Workers: 2, MaxDeltaOps: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				// every batch crosses the 1-op threshold and kicks the
				// compactor; errors after Close are expected
				_ = lg.Apply(live.Batch{Ops: []live.Op{
					{Src: graph.VertexID(seed), Dst: graph.VertexID(i % 50)},
				}})
			}
		}(w)
	}
	lg.Close()
	wg.Wait()
}
