package live

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// Text edge-batch format — the plain-text body of the ingest endpoint
// and the on-disk format of graphgen -stream files:
//
//	src dst [weight]    insert (upsert) one edge
//	- src dst           delete one edge
//	# ...               comment; "# batch N" lines separate replayable
//	                    batches in stream files (SplitStream)
//
// Blank lines are skipped. Parse errors report 1-based line numbers.

// ParseTextBatch reads one batch in the text format.
func ParseTextBatch(r io.Reader) (Batch, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var b Batch
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		op := Op{}
		if f[0] == "-" {
			if len(f) != 3 {
				return Batch{}, fmt.Errorf("live: line %d: bad delete %q (want \"- src dst\")", lineno, line)
			}
			op.Del = true
			f = f[1:]
		} else if len(f) != 2 && len(f) != 3 {
			return Batch{}, fmt.Errorf("live: line %d: bad op %q (want \"src dst [weight]\")", lineno, line)
		}
		src, err := strconv.ParseUint(f[0], 10, 32)
		if err != nil {
			return Batch{}, fmt.Errorf("live: line %d: bad src in %q: %w", lineno, line, err)
		}
		dst, err := strconv.ParseUint(f[1], 10, 32)
		if err != nil {
			return Batch{}, fmt.Errorf("live: line %d: bad dst in %q: %w", lineno, line, err)
		}
		op.Src, op.Dst = graph.VertexID(src), graph.VertexID(dst)
		if !op.Del && len(f) == 3 {
			w, err := strconv.ParseInt(f[2], 10, 32)
			if err != nil {
				return Batch{}, fmt.Errorf("live: line %d: bad weight in %q: %w", lineno, line, err)
			}
			op.Weight = int32(w)
		}
		b.Ops = append(b.Ops, op)
	}
	if err := sc.Err(); err != nil {
		return Batch{}, fmt.Errorf("live: line %d: %w", lineno, err)
	}
	return b, nil
}

// WriteTextBatch writes one batch in the text format.
func WriteTextBatch(w io.Writer, b Batch) error {
	bw := bufio.NewWriter(w)
	for _, op := range b.Ops {
		var err error
		switch {
		case op.Del:
			_, err = fmt.Fprintf(bw, "- %d %d\n", op.Src, op.Dst)
		case op.Weight != 0:
			_, err = fmt.Fprintf(bw, "%d %d %d\n", op.Src, op.Dst, op.Weight)
		default:
			_, err = fmt.Fprintf(bw, "%d %d\n", op.Src, op.Dst)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteStream writes batches as one replayable stream file: each batch
// preceded by its "# batch N" separator line.
func WriteStream(w io.Writer, batches []Batch) error {
	for i, b := range batches {
		if _, err := fmt.Fprintf(w, "# batch %d\n", i); err != nil {
			return err
		}
		if err := WriteTextBatch(w, b); err != nil {
			return err
		}
	}
	return nil
}

// SplitStream cuts a stream file into its per-batch text chunks (each a
// valid ingest body) without parsing the ops: replayers POST the chunks
// verbatim.
func SplitStream(data string) []string {
	var chunks []string
	var cur strings.Builder
	flush := func() {
		if strings.TrimSpace(cur.String()) != "" {
			chunks = append(chunks, cur.String())
		}
		cur.Reset()
	}
	for _, line := range strings.Split(data, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "# batch") {
			flush()
			continue
		}
		cur.WriteString(line)
		cur.WriteString("\n")
	}
	flush()
	return chunks
}

// ReadStream parses a whole stream file into batches.
func ReadStream(r io.Reader) ([]Batch, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	chunks := SplitStream(string(data))
	out := make([]Batch, 0, len(chunks))
	for i, c := range chunks {
		b, err := ParseTextBatch(strings.NewReader(c))
		if err != nil {
			return nil, fmt.Errorf("live: stream batch %d: %w", i, err)
		}
		out = append(out, b)
	}
	return out, nil
}
