package live

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/partition"
)

// View is one (placement, orientation) combination of an epoch's graph:
// the CSR, its partition, the pre-resolved shared-nothing fragments
// every job runs on, and the placement's directed edge-cut fraction.
// Views are immutable once built and shared by every job that asks for
// the same combination.
type View struct {
	Placement  string
	Undirected bool
	Graph      *graph.Graph
	Part       *partition.Partition
	Frags      *frag.Fragments
	EdgeCut    float64
}

type viewKey struct {
	placement  string
	undirected bool
}

// viewSlot is the build-once cell of one view. The pointer is atomic so
// monitoring snapshots (BuiltViews) can observe finished views without
// synchronizing against an in-flight build.
type viewSlot struct {
	once sync.Once
	view atomic.Pointer[View]
	err  error
}

// EpochConfig configures a standalone epoch (the catalog uses one per
// immutable dataset; live graphs create their own internally).
type EpochConfig struct {
	// Workers is the simulated cluster size views are partitioned for
	// (<= 0 selects 8).
	Workers int
	// Preset partitions, keyed by placement name, are used instead of
	// re-partitioning when their shape matches (snapshot-embedded owner
	// vectors).
	Preset map[string]*partition.Partition
	// OnBytes, if set, is called with the resident-byte delta whenever
	// the epoch derives something (views, fragments, transposes, the
	// undirected orientation) and once with the negated total when the
	// epoch is freed. The graph's own bytes are charged at construction.
	OnBytes func(delta int64)
	// OnFree, if set, runs when a superseded epoch's last pin is
	// released and its memory is dropped.
	OnFree func(seq uint64, bytes int64)
}

// Epoch is one immutable snapshot of a graph: a CSR plus its lazily
// derived views. Readers pin an epoch (Pin/Release) for the duration of
// a computation; a superseded epoch is freed when its last pin is
// released, so a running job never observes a torn graph and retired
// snapshots do not accumulate.
type Epoch struct {
	seq     uint64
	workers int
	preset  map[string]*partition.Partition

	undOnce  sync.Once
	undGraph *graph.Graph

	mu         sync.Mutex
	graph      *graph.Graph // nil once freed
	views      map[viewKey]*viewSlot
	onBytes    func(int64)
	onFree     func(uint64, int64)
	bytes      int64
	refs       int
	superseded bool
	freed      bool
}

// NewEpoch wraps g as epoch seq. The graph must not be mutated
// afterwards; its CSR bytes are charged through cfg.OnBytes.
func NewEpoch(seq uint64, g *graph.Graph, cfg EpochConfig) *Epoch {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 8
	}
	e := &Epoch{
		seq:     seq,
		workers: workers,
		preset:  cfg.Preset,
		graph:   g,
		views:   make(map[viewKey]*viewSlot),
		onBytes: cfg.OnBytes,
		onFree:  cfg.OnFree,
	}
	e.charge(graphBytes(g))
	return e
}

// Seq returns the epoch's sequence number (1 is the load-time base).
func (e *Epoch) Seq() uint64 { return e.seq }

// Graph returns the epoch's CSR. Valid while the epoch is current or
// pinned; a freed epoch returns nil.
func (e *Epoch) Graph() *graph.Graph {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.graph
}

// Bytes returns the approximate resident size of the epoch including
// all derived views.
func (e *Epoch) Bytes() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.bytes
}

// SetOnBytes installs the byte-accounting hook after construction (the
// catalog charges an entry's initial epoch to its base size and only
// then routes deltas through the LRU budget). Already-accumulated bytes
// are not re-charged.
func (e *Epoch) SetOnBytes(f func(delta int64)) {
	e.mu.Lock()
	e.onBytes = f
	e.mu.Unlock()
}

// charge accumulates b into the epoch's resident size and forwards it
// to the accounting hook (outside the lock: the hook may take other
// locks, e.g. the catalog's).
func (e *Epoch) charge(b int64) {
	e.mu.Lock()
	e.bytes += b
	hook := e.onBytes
	e.mu.Unlock()
	if hook != nil {
		hook(b)
	}
}

// Pin takes a reference on the epoch: its graph and views stay resident
// until the matching Release, even if a newer epoch is published
// meanwhile. Returns the receiver for chaining.
func (e *Epoch) Pin() *Epoch {
	e.mu.Lock()
	e.refs++
	e.mu.Unlock()
	return e
}

// Release drops a pin. The last release of a superseded epoch frees it.
func (e *Epoch) Release() {
	e.mu.Lock()
	if e.refs <= 0 {
		e.mu.Unlock()
		panic("live: Release without matching Pin")
	}
	e.refs--
	doFree := e.superseded && e.refs == 0 && !e.freed
	if doFree {
		e.freed = true
	}
	e.mu.Unlock()
	if doFree {
		e.free()
	}
}

// supersede marks the epoch as replaced by a newer one; it is freed now
// if unpinned, otherwise when the last pin is released.
func (e *Epoch) supersede() {
	e.mu.Lock()
	e.superseded = true
	doFree := e.refs == 0 && !e.freed
	if doFree {
		e.freed = true
	}
	e.mu.Unlock()
	if doFree {
		e.free()
	}
}

// free drops the epoch's references so the GC can reclaim them,
// un-charges its bytes, and fires the retirement hook.
func (e *Epoch) free() {
	e.mu.Lock()
	b := e.bytes
	e.bytes = 0
	e.graph = nil
	e.views = nil
	e.undGraph = nil
	e.preset = nil
	onBytes, onFree := e.onBytes, e.onFree
	e.mu.Unlock()
	if onBytes != nil {
		onBytes(-b)
	}
	if onFree != nil {
		onFree(e.seq, b)
	}
}

// undirected returns the both-orientations graph of the epoch, deriving
// and caching it on first use.
func (e *Epoch) undirected() *graph.Graph {
	g := e.Graph()
	if g.Undirected {
		return g
	}
	e.undOnce.Do(func() {
		e.undGraph = graph.Undirectify(g)
		e.charge(graphBytes(e.undGraph))
	})
	return e.undGraph
}

// View returns the epoch under the named placement ("" or "hash",
// "greedy") and orientation, building the partition and fragments
// exactly once per combination. The caller must hold a pin (or the
// epoch must still be current).
func (e *Epoch) View(placement string, undirected bool) (*View, error) {
	if placement == "" {
		placement = partition.PlacementHash
	}
	e.mu.Lock()
	if e.freed {
		e.mu.Unlock()
		return nil, fmt.Errorf("live: epoch %d is retired", e.seq)
	}
	if e.graph.Undirected {
		undirected = false // base already stores both orientations
	}
	key := viewKey{placement: placement, undirected: undirected}
	slot, ok := e.views[key]
	if !ok {
		slot = &viewSlot{}
		e.views[key] = slot
	}
	e.mu.Unlock()
	slot.once.Do(func() {
		g := e.Graph()
		if undirected {
			g = e.undirected()
		}
		v, err := e.buildView(placement, undirected, g)
		slot.err = err
		if err == nil {
			slot.view.Store(v)
		}
	})
	return slot.view.Load(), slot.err
}

// buildView constructs one (placement, orientation) view of graph g:
// partition (preset when its shape matches), fragments built in
// parallel, edge cut. The view's resident bytes are charged as a
// derivation.
func (e *Epoch) buildView(placement string, undirected bool, g *graph.Graph) (*View, error) {
	part := e.presetFor(placement, g)
	if part == nil {
		var err error
		part, err = partition.ByName(placement, g, e.workers)
		if err != nil {
			return nil, err
		}
	}
	fs := frag.Build(g, part)
	fs.DeriveHook = e.charge
	v := &View{
		Placement:  placement,
		Undirected: undirected,
		Graph:      g,
		Part:       part,
		Frags:      fs,
		EdgeCut:    partition.EdgeCut(g, part),
	}
	e.charge(fs.Bytes() + partitionBytes(g))
	return v, nil
}

// presetFor returns a preset partition for the placement if one matches
// this epoch's worker count and g's vertex count.
func (e *Epoch) presetFor(placement string, g *graph.Graph) *partition.Partition {
	p, ok := e.preset[placement]
	if !ok || p.NumWorkers() != e.workers || p.NumVertices() != g.NumVertices() {
		return nil
	}
	return p
}

// BuiltViews returns the views built so far, sorted by (placement,
// orientation). A compaction pre-warms the successor epoch with the
// same combinations; the dataset detail endpoint lists them.
func (e *Epoch) BuiltViews() []*View {
	e.mu.Lock()
	slots := make([]*viewSlot, 0, len(e.views))
	for _, s := range e.views {
		slots = append(slots, s)
	}
	e.mu.Unlock()
	out := make([]*View, 0, len(slots))
	for _, s := range slots {
		// a slot mid-build is skipped rather than waited on: BuiltViews
		// is a monitoring snapshot, not a synchronization point
		if v := s.view.Load(); v != nil {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Placement != out[j].Placement {
			return out[i].Placement < out[j].Placement
		}
		return !out[i].Undirected && out[j].Undirected
	})
	return out
}

// graphBytes approximates the resident size of a graph's CSR arrays.
func graphBytes(g *graph.Graph) int64 {
	return int64(len(g.Offsets))*8 + int64(len(g.Adj))*4 + int64(len(g.Weights))*4
}

// partitionBytes approximates the resident size of one partition of g
// (owner vector, local indices, per-worker vertex lists ~10 bytes per
// vertex).
func partitionBytes(g *graph.Graph) int64 {
	return int64(g.NumVertices()) * 10
}
