package live_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/partition"
)

// Equivalence acceptance: after interleaved random insert/delete
// batches and compactions, every registry algorithm — both engines, all
// variants, both placements — computes the same result on the live
// dataset's current epoch as on a graph.FromEdges build of the final
// edge set. The oracle merge below is written independently of
// live.Materialize (edge-list loops + FromEdges, not a CSR merge).

// opState mirrors live's last-write-wins semantics while the test
// applies ops, so the oracle edge set can be assembled independently.
type opState struct {
	weight  int32
	present bool
}

func pairKey(s, d graph.VertexID) uint64 { return uint64(s)<<32 | uint64(d) }

// oracleGraph builds the final edge set from the base plus the touched
// map: untouched base edges verbatim, then the surviving insertions.
func oracleGraph(base *graph.Graph, touched map[uint64]opState, weighted bool) *graph.Graph {
	var edges []graph.Edge
	for u := 0; u < base.NumVertices(); u++ {
		var ws []int32
		if base.Weighted() {
			ws = base.NeighborWeights(graph.VertexID(u))
		}
		for i, v := range base.Neighbors(graph.VertexID(u)) {
			if _, ok := touched[pairKey(graph.VertexID(u), v)]; ok {
				continue
			}
			e := graph.Edge{Src: graph.VertexID(u), Dst: v}
			if ws != nil {
				e.Weight = ws[i]
			}
			edges = append(edges, e)
		}
	}
	for k, st := range touched {
		if st.present {
			edges = append(edges, graph.Edge{
				Src: graph.VertexID(k >> 32), Dst: graph.VertexID(uint32(k)), Weight: st.weight})
		}
	}
	return graph.FromEdges(base.NumVertices(), edges, weighted)
}

// samePartitionEq asserts two labelings induce the same equivalence
// classes.
func samePartitionEq(t *testing.T, what string, got, want []graph.VertexID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	fwd := map[graph.VertexID]graph.VertexID{}
	rev := map[graph.VertexID]graph.VertexID{}
	for i := range got {
		if m, ok := fwd[got[i]]; ok && m != want[i] {
			t.Fatalf("%s: vertex %d splits class %d", what, i, got[i])
		}
		if m, ok := rev[want[i]]; ok && m != got[i] {
			t.Fatalf("%s: vertex %d merges classes", what, i)
		}
		fwd[got[i]] = want[i]
		rev[want[i]] = got[i]
	}
}

func compareResults(t *testing.T, what string, got, want *algorithms.Result) {
	t.Helper()
	if got.Kind() != want.Kind() {
		t.Fatalf("%s: kind %s vs %s", what, got.Kind(), want.Kind())
	}
	switch got.Kind() {
	case "ranks":
		for v := range want.Ranks {
			if math.Abs(got.Ranks[v]-want.Ranks[v]) > 1e-9 {
				t.Fatalf("%s: rank[%d]=%g want %g", what, v, got.Ranks[v], want.Ranks[v])
			}
		}
	case "dists":
		for v := range want.Dists {
			if got.Dists[v] != want.Dists[v] {
				t.Fatalf("%s: dist[%d]=%d want %d", what, v, got.Dists[v], want.Dists[v])
			}
		}
	case "labels":
		samePartitionEq(t, what, got.Labels, want.Labels)
	case "msf":
		if got.MSF.Weight != want.MSF.Weight {
			t.Fatalf("%s: msf weight %d vs %d", what, got.MSF.Weight, want.MSF.Weight)
		}
		if len(got.MSF.Edges) != len(want.MSF.Edges) {
			t.Fatalf("%s: msf edges %d vs %d", what, len(got.MSF.Edges), len(want.MSF.Edges))
		}
		samePartitionEq(t, what, got.MSF.Comp, want.MSF.Comp)
	}
}

// runEverything runs every (algorithm, engine, variant, placement)
// combination of the registry (minus skip) on both graphs and compares.
func runEverything(t *testing.T, lg *live.Graph, oracle *graph.Graph, workers int, skip func(*algorithms.Spec) bool) {
	t.Helper()
	params := algorithms.Params{Iterations: 20, Source: 0}
	undirected := map[bool]*graph.Graph{false: oracle}
	for _, spec := range algorithms.Registry() {
		if skip(spec) {
			continue
		}
		og := oracle
		if spec.NeedsUndirected {
			if undirected[true] == nil {
				undirected[true] = graph.Undirectify(oracle)
			}
			og = undirected[true]
		}
		for _, placement := range []string{partition.PlacementHash, partition.PlacementGreedy} {
			oPart, err := partition.ByName(placement, og, workers)
			if err != nil {
				t.Fatal(err)
			}
			for _, eng := range spec.Engines() {
				for _, variant := range spec.Variants(eng) {
					what := fmt.Sprintf("%s/%s/%s/%s", spec.Name, eng, variant, placement)

					ep := lg.Pin()
					view, err := ep.View(placement, spec.NeedsUndirected)
					if err != nil {
						ep.Release()
						t.Fatalf("%s: view: %v", what, err)
					}
					liveRes, err := spec.Run(eng, variant, view.Graph,
						algorithms.Options{Part: view.Part, Frags: view.Frags, MaxSupersteps: 200000}, params)
					ep.Release()
					if err != nil {
						t.Fatalf("%s: live run: %v", what, err)
					}

					wantRes, err := spec.Run(eng, variant, og,
						algorithms.Options{Part: oPart, MaxSupersteps: 200000}, params)
					if err != nil {
						t.Fatalf("%s: oracle run: %v", what, err)
					}
					compareResults(t, what, liveRes, wantRes)
				}
			}
		}
	}
}

func TestLiveEquivalenceSweep(t *testing.T) {
	const workers = 4
	base := graph.RMAT(7, 6, 21, graph.RMATOptions{Weighted: true, MaxWeight: 50, NoSelfLoops: true})
	n := base.NumVertices()
	lg, err := live.New(base, live.Options{Workers: workers,
		MaxDeltaOps: 1 << 30, MaxDeltaBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	rng := rand.New(rand.NewSource(77))
	touched := make(map[uint64]opState)
	for b := 0; b < 8; b++ {
		var batch live.Batch
		for o := 0; o < 60; o++ {
			op := live.Op{
				Src: graph.VertexID(rng.Intn(n)),
				Dst: graph.VertexID(rng.Intn(n)),
			}
			if rng.Intn(4) == 0 {
				op.Del = true
			} else {
				op.Weight = 1 + rng.Int31n(50)
			}
			batch.Ops = append(batch.Ops, op)
			touched[pairKey(op.Src, op.Dst)] = opState{weight: op.Weight, present: !op.Del}
		}
		if err := lg.Apply(batch); err != nil {
			t.Fatal(err)
		}
		if b == 2 || b == 5 {
			lg.CompactNow() // interleave compactions with ingest
		}
	}
	lg.CompactNow()
	if st := lg.Stats(); st.Compactions < 3 || st.PendingOps != 0 {
		t.Fatalf("expected >= 3 interleaved compactions, got %+v", st)
	}

	oracle := oracleGraph(base, touched, true)
	// pointerjump is excluded: random digraph mutations break its
	// parent-pointer-forest precondition (covered by the forest sweep)
	runEverything(t, lg, oracle, workers, func(s *algorithms.Spec) bool {
		return s.Name == "pointerjump"
	})
}

// TestLiveEquivalenceForest covers pointerjump: mutations re-point
// vertices to new parents with strictly smaller ids, so every epoch is
// a valid parent-pointer forest.
func TestLiveEquivalenceForest(t *testing.T) {
	const workers = 4
	base := graph.Forest(300, 3, 9)
	n := base.NumVertices()
	lg, err := live.New(base, live.Options{Workers: workers,
		MaxDeltaOps: 1 << 30, MaxDeltaBatches: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer lg.Close()

	parent := make(map[graph.VertexID]graph.VertexID)
	for u := 0; u < n; u++ {
		for _, v := range base.Neighbors(graph.VertexID(u)) {
			parent[graph.VertexID(u)] = v
		}
	}
	rng := rand.New(rand.NewSource(13))
	touched := make(map[uint64]opState)
	repoint := func(c, newp graph.VertexID) []live.Op {
		old := parent[c]
		parent[c] = newp
		touched[pairKey(c, old)] = opState{present: false}
		touched[pairKey(c, newp)] = opState{present: true}
		return []live.Op{
			{Src: c, Dst: old, Del: true},
			{Src: c, Dst: newp},
		}
	}
	for b := 0; b < 6; b++ {
		var batch live.Batch
		for o := 0; o < 30; o++ {
			c := graph.VertexID(3 + rng.Intn(n-3)) // non-root
			if _, ok := parent[c]; !ok {
				continue
			}
			batch.Ops = append(batch.Ops, repoint(c, graph.VertexID(rng.Intn(int(c))))...)
		}
		if err := lg.Apply(batch); err != nil {
			t.Fatal(err)
		}
		if b%2 == 1 {
			lg.CompactNow()
		}
	}
	lg.CompactNow()

	oracle := oracleGraph(base, touched, false)
	runEverything(t, lg, oracle, workers, func(s *algorithms.Spec) bool {
		return s.Name != "pointerjump"
	})
}
