package live_test

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/live"
)

// benchBatches pre-generates mutation batches against an n-vertex graph
// so the benchmark loop measures ingest/compaction, not rand.
func benchBatches(n, count, ops int, delFrac float64) []live.Batch {
	rng := rand.New(rand.NewSource(4242))
	out := make([]live.Batch, count)
	for b := range out {
		batch := live.Batch{Ops: make([]live.Op, 0, ops)}
		for o := 0; o < ops; o++ {
			op := live.Op{
				Src:    graph.VertexID(rng.Intn(n)),
				Dst:    graph.VertexID(rng.Intn(n)),
				Weight: 1 + rng.Int31n(100),
			}
			if rng.Float64() < delFrac {
				op.Del = true
			}
			batch.Ops = append(batch.Ops, op)
		}
		out[b] = batch
	}
	return out
}

// BenchmarkLiveIngest measures the delta-log append path: one 1024-op
// batch per iteration, compaction disabled. This is the latency an
// ingest POST pays before its HTTP response.
func BenchmarkLiveIngest(b *testing.B) {
	base := graph.RMAT(12, 8, 7, graph.RMATOptions{Weighted: true, MaxWeight: 100, NoSelfLoops: true})
	lg, err := live.New(base, live.Options{Workers: 8,
		MaxDeltaOps: 1 << 62, MaxDeltaBatches: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	batches := benchBatches(base.NumVertices(), 64, 1024, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lg.Apply(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(1024, "ops/batch")
}

// BenchmarkLiveCompact measures one full compaction cycle on a
// scale-12 weighted R-MAT (4096 vertices, ~32k edges): merge a pending
// 2048-op batch into a new CSR and rebuild the hash partition plus the
// per-worker fragments the previous epoch had materialized.
func BenchmarkLiveCompact(b *testing.B) {
	base := graph.RMAT(12, 8, 7, graph.RMATOptions{Weighted: true, MaxWeight: 100, NoSelfLoops: true})
	lg, err := live.New(base, live.Options{Workers: 8,
		MaxDeltaOps: 1 << 62, MaxDeltaBatches: 1 << 62})
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	// materialize the hash view so every compaction rebuilds it
	ep := lg.Pin()
	if _, err := ep.View("hash", false); err != nil {
		b.Fatal(err)
	}
	ep.Release()
	batches := benchBatches(base.NumVertices(), 64, 2048, 0.2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := lg.Apply(batches[i%len(batches)]); err != nil {
			b.Fatal(err)
		}
		lg.CompactNow()
	}
	b.StopTimer()
	st := lg.Stats()
	if st.Compactions != uint64(b.N) {
		b.Fatalf("compactions %d, want %d", st.Compactions, b.N)
	}
	b.ReportMetric(float64(st.Edges), "edges")
}

// BenchmarkLivePinRelease measures the reader-side epoch pin cost — the
// overhead every job pays to get a consistent snapshot.
func BenchmarkLivePinRelease(b *testing.B) {
	base := graph.RMAT(10, 8, 7, graph.RMATOptions{NoSelfLoops: true})
	lg, err := live.New(base, live.Options{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	defer lg.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lg.Pin().Release()
	}
}
