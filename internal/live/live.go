// Package live makes graphs mutable while queries run. A live Graph
// holds an immutable base CSR — an Epoch — plus an append-only delta
// log of batched edge insertions and deletions. Readers pin an epoch by
// refcount, so a running job always computes over one consistent
// snapshot no matter how many batches land mid-run; a background
// compactor merges the delta log into a new CSR (rebuilding the
// partitions and shared-nothing fragments the previous epoch had, in
// parallel, with the same builders the static catalog path uses),
// publishes the new epoch atomically, and retires old epochs as soon as
// their last pin is released.
//
// Edge semantics are last-write-wins per (src, dst) pair: an insertion
// upserts the edge (replacing the weight of an existing one, collapsing
// any duplicate parallel edges the base graph carried), a deletion
// removes every stored copy of the pair. Inserting an edge whose
// endpoints exceed the current vertex count grows the graph; vertex
// counts never shrink once materialized.
//
// Epochs also serve immutable datasets: the catalog wraps every static
// graph in a single never-superseded Epoch, so view construction
// (partition, fragments, edge cut, undirected orientation) has exactly
// one implementation for frozen and live data alike.
package live

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/partition"
)

// Op is a single edge mutation. Weight is ignored when the base graph
// is unweighted; Del deletes the (Src, Dst) pair (Weight ignored).
type Op struct {
	Src    graph.VertexID `json:"src"`
	Dst    graph.VertexID `json:"dst"`
	Weight int32          `json:"weight,omitempty"`
	Del    bool           `json:"del,omitempty"`
}

// Batch is one atomic group of edge mutations: all of it becomes
// visible in the same epoch.
type Batch struct {
	Ops []Op
}

// Options configures a live graph.
type Options struct {
	// Workers is the simulated cluster size views are partitioned for
	// (<= 0 selects 8).
	Workers int
	// MaxDeltaOps triggers a background compaction once the delta log
	// holds at least this many pending operations (<= 0 selects 65536).
	MaxDeltaOps int
	// MaxDeltaBatches triggers a background compaction once the delta
	// log holds at least this many pending batches (<= 0 selects 64).
	MaxDeltaBatches int
	// MaxVertices bounds vertex growth through insertions (<= 0 selects
	// 1<<26): one absurd vertex id must not allocate a huge CSR.
	MaxVertices int
	// Preset partitions for the base epoch (snapshot-embedded owner
	// vectors); compacted epochs always re-partition.
	Preset map[string]*partition.Partition
	// OnBytes observes resident-byte deltas (epochs and their views as
	// they are built, negated totals as epochs are freed).
	OnBytes func(delta int64)
	// OnRetire observes epoch retirements (after the memory is
	// dropped).
	OnRetire func(seq uint64, bytes int64)
}

// Stats is a point-in-time summary of a live graph.
type Stats struct {
	Epoch          uint64 `json:"epoch"`
	Vertices       int    `json:"vertices"`
	Edges          int    `json:"edges"`
	PendingBatches int    `json:"pending_batches"`
	PendingOps     int    `json:"pending_ops"`
	Batches        uint64 `json:"batches"`
	Inserts        uint64 `json:"inserts"`
	Deletes        uint64 `json:"deletes"`
	Compactions    uint64 `json:"compactions"`
	RetiredEpochs  uint64 `json:"retired_epochs"`
	LiveEpochs     int    `json:"live_epochs"`
	Bytes          int64  `json:"bytes"`
}

// Graph is a mutable graph: an immutable current epoch plus the delta
// log of batches not yet compacted into it. Safe for concurrent use.
type Graph struct {
	workers     int
	maxOps      int
	maxBatches  int
	maxVertices int
	weighted    bool
	onRetire    func(uint64, int64)

	mu         sync.Mutex
	cur        *Epoch
	log        []Batch
	pendingOps int
	onBytes    func(int64)
	bytes      int64
	closed     bool

	batches, inserts, deletes uint64
	compactions, retired      uint64
	liveEpochs                int

	kick      chan struct{} // buffered(1): wakes the background compactor
	compactMu sync.Mutex    // serializes compactions (background + CompactNow)
	wg        sync.WaitGroup
}

// New wraps g (which must not be mutated afterwards) as epoch 1 of a
// live graph and starts the background compactor. Undirected base
// graphs are rejected: mutations are directed edges, and algorithms
// that need both orientations get a per-epoch undirected view instead.
func New(g *graph.Graph, opts Options) (*Graph, error) {
	if g.Undirected {
		return nil, fmt.Errorf("live: undirected base graph not supported (store the directed base; undirected views are derived per epoch)")
	}
	lg := &Graph{
		workers:     opts.Workers,
		maxOps:      opts.MaxDeltaOps,
		maxBatches:  opts.MaxDeltaBatches,
		maxVertices: opts.MaxVertices,
		weighted:    g.Weighted(),
		onRetire:    opts.OnRetire,
		onBytes:     opts.OnBytes,
		kick:        make(chan struct{}, 1),
	}
	if lg.workers <= 0 {
		lg.workers = 8
	}
	if lg.maxOps <= 0 {
		lg.maxOps = 1 << 16
	}
	if lg.maxBatches <= 0 {
		lg.maxBatches = 64
	}
	if lg.maxVertices <= 0 {
		lg.maxVertices = 1 << 26
	}
	if g.NumVertices() > lg.maxVertices {
		return nil, fmt.Errorf("live: base graph has %d vertices, above the growth bound %d", g.NumVertices(), lg.maxVertices)
	}
	lg.cur = lg.newEpoch(1, g, opts.Preset)
	lg.liveEpochs = 1
	lg.wg.Add(1)
	go lg.compactLoop()
	return lg, nil
}

// newEpoch builds an epoch whose byte and retirement hooks route
// through this live graph's accounting.
func (g *Graph) newEpoch(seq uint64, base *graph.Graph, preset map[string]*partition.Partition) *Epoch {
	return NewEpoch(seq, base, EpochConfig{
		Workers: g.workers,
		Preset:  preset,
		OnBytes: g.chargeBytes,
		OnFree:  g.noteRetire,
	})
}

// chargeBytes folds an epoch's byte delta into the graph total and
// forwards it to the installed hook.
func (g *Graph) chargeBytes(b int64) {
	g.mu.Lock()
	g.bytes += b
	hook := g.onBytes
	g.mu.Unlock()
	if hook != nil {
		hook(b)
	}
}

// noteRetire records an epoch retirement.
func (g *Graph) noteRetire(seq uint64, bytes int64) {
	g.mu.Lock()
	g.retired++
	g.liveEpochs--
	hook := g.onRetire
	g.mu.Unlock()
	if hook != nil {
		hook(seq, bytes)
	}
}

// SetOnBytes installs the byte-accounting hook after construction; the
// catalog counts the load-time epoch into an entry's base size and only
// routes subsequent deltas through its LRU budget.
func (g *Graph) SetOnBytes(f func(delta int64)) {
	g.mu.Lock()
	g.onBytes = f
	g.mu.Unlock()
}

// Weighted reports whether edges carry weights.
func (g *Graph) Weighted() bool { return g.weighted }

// Bytes returns the approximate resident size of all live epochs and
// their views.
func (g *Graph) Bytes() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bytes
}

// Pin returns the current epoch with a reference taken; the caller must
// Release it when done. The pinned epoch is immutable: batches applied
// after Pin land in later epochs.
func (g *Graph) Pin() *Epoch {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur.Pin()
}

// Apply appends one batch to the delta log. The mutations become
// visible to readers at the next compaction (which it triggers once the
// log crosses the configured thresholds). Ops whose endpoints exceed
// the vertex-growth bound are rejected; the whole batch is then
// dropped.
func (g *Graph) Apply(b Batch) error {
	var ins, del int
	for _, op := range b.Ops {
		if int(op.Src) >= g.maxVertices || int(op.Dst) >= g.maxVertices {
			return fmt.Errorf("live: op (%d,%d) exceeds the vertex bound %d", op.Src, op.Dst, g.maxVertices)
		}
		if op.Del {
			del++
		} else {
			ins++
		}
	}
	if len(b.Ops) == 0 {
		return nil
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return fmt.Errorf("live: graph is closed")
	}
	g.log = append(g.log, b)
	g.pendingOps += len(b.Ops)
	g.batches++
	g.inserts += uint64(ins)
	g.deletes += uint64(del)
	if g.pendingOps >= g.maxOps || len(g.log) >= g.maxBatches {
		// still under g.mu: Close also closes kick under it, so this
		// send can never race a close
		select {
		case g.kick <- struct{}{}:
		default: // a wake-up is already pending
		}
	}
	g.mu.Unlock()
	return nil
}

// compactLoop is the background compactor: each wake-up merges the
// whole delta log into a fresh epoch.
func (g *Graph) compactLoop() {
	defer g.wg.Done()
	for range g.kick {
		g.compactOnce()
	}
}

// CompactNow synchronously merges the pending delta log into a new
// epoch (no-op when the log is empty). Ingest may continue concurrently;
// batches that arrive mid-compaction stay pending for the next one.
func (g *Graph) CompactNow() {
	g.compactOnce()
}

// compactOnce merges the pending delta-log prefix into a new epoch and
// publishes it. Serialized against concurrent compactions; Apply and
// Pin proceed concurrently.
func (g *Graph) compactOnce() {
	g.compactMu.Lock()
	defer g.compactMu.Unlock()

	g.mu.Lock()
	if len(g.log) == 0 || g.closed {
		g.mu.Unlock()
		return
	}
	base := g.cur
	nb := len(g.log)
	batches := g.log[:nb:nb] // capped: concurrent appends cannot alias
	g.mu.Unlock()

	merged := Materialize(base.Graph(), batches, g.weighted)
	next := g.newEpoch(base.Seq()+1, merged, nil)

	// Pre-warm the views the outgoing epoch had, in parallel, so jobs
	// submitted right after the flip pay nothing: the partition and
	// fragment rebuilds happen here, on the compactor, not on the first
	// reader.
	var wg sync.WaitGroup
	for _, v := range base.BuiltViews() {
		wg.Add(1)
		go func(placement string, undirected bool) {
			defer wg.Done()
			_, _ = next.View(placement, undirected)
		}(v.Placement, v.Undirected)
	}
	wg.Wait()

	nops := 0
	for _, b := range batches {
		nops += len(b.Ops)
	}
	g.mu.Lock()
	g.cur = next
	g.log = g.log[nb:]
	g.pendingOps -= nops
	g.compactions++
	g.liveEpochs++
	g.mu.Unlock()
	base.supersede()
}

// Stats returns a point-in-time summary.
func (g *Graph) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	cg := g.cur.Graph()
	return Stats{
		Epoch:          g.cur.Seq(),
		Vertices:       cg.NumVertices(),
		Edges:          cg.NumEdges(),
		PendingBatches: len(g.log),
		PendingOps:     g.pendingOps,
		Batches:        g.batches,
		Inserts:        g.inserts,
		Deletes:        g.deletes,
		Compactions:    g.compactions,
		RetiredEpochs:  g.retired,
		LiveEpochs:     g.liveEpochs,
		Bytes:          g.bytes,
	}
}

// Close stops the background compactor and rejects further Apply
// calls. Pinned epochs stay valid until released; the current epoch
// remains readable.
func (g *Graph) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	close(g.kick) // under g.mu, so no Apply can be mid-send
	g.mu.Unlock()
	g.wg.Wait()
}

// Materialize applies batches to base and returns the merged CSR:
// last-write-wins per (src, dst) pair, base edge order preserved for
// untouched edges, touched pairs appended to their source's adjacency
// in (src, dst) order. The result is deterministic in (base, batches).
func Materialize(base *graph.Graph, batches []Batch, weighted bool) *graph.Graph {
	type state struct {
		weight  int32
		present bool
	}
	key := func(s, d graph.VertexID) uint64 { return uint64(s)<<32 | uint64(d) }
	final := make(map[uint64]state)
	for _, b := range batches {
		for _, op := range b.Ops {
			final[key(op.Src, op.Dst)] = state{weight: op.Weight, present: !op.Del}
		}
	}

	n := base.NumVertices()
	adds := make([]delta, 0, len(final))
	for k, st := range final {
		if !st.present {
			continue
		}
		d := delta{src: graph.VertexID(k >> 32), dst: graph.VertexID(uint32(k)), weight: st.weight}
		if int(d.src) >= n {
			n = int(d.src) + 1
		}
		if int(d.dst) >= n {
			n = int(d.dst) + 1
		}
		adds = append(adds, d)
	}
	// the packed key is exactly (src, dst) order
	sort.Slice(adds, func(i, j int) bool {
		return key(adds[i].src, adds[i].dst) < key(adds[j].src, adds[j].dst)
	})

	out := &graph.Graph{Offsets: make([]uint64, n+1)}
	// count: base edges whose pair is untouched, plus final insertions
	baseN := base.NumVertices()
	for u := 0; u < baseN; u++ {
		for _, v := range base.Neighbors(graph.VertexID(u)) {
			if _, touched := final[key(graph.VertexID(u), v)]; !touched {
				out.Offsets[u+1]++
			}
		}
	}
	for _, d := range adds {
		out.Offsets[d.src+1]++
	}
	for i := 1; i <= n; i++ {
		out.Offsets[i] += out.Offsets[i-1]
	}
	m := out.Offsets[n]
	out.Adj = make([]graph.VertexID, m)
	if weighted {
		out.Weights = make([]int32, m)
	}
	cursor := make([]uint64, n)
	copy(cursor, out.Offsets[:n])
	emit := func(u, v graph.VertexID, w int32) {
		p := cursor[u]
		cursor[u]++
		out.Adj[p] = v
		if weighted {
			out.Weights[p] = w
		}
	}
	for u := 0; u < baseN; u++ {
		var ws []int32
		if base.Weighted() {
			ws = base.NeighborWeights(graph.VertexID(u))
		}
		for i, v := range base.Neighbors(graph.VertexID(u)) {
			if _, touched := final[key(graph.VertexID(u), v)]; touched {
				continue
			}
			w := int32(0)
			if ws != nil {
				w = ws[i]
			}
			emit(graph.VertexID(u), v, w)
		}
		// touched pairs of u go after its surviving base edges, in dst
		// order (adds is (src, dst)-sorted; deltas of u are contiguous)
		for len(adds) > 0 && adds[0].src == graph.VertexID(u) {
			emit(adds[0].src, adds[0].dst, adds[0].weight)
			adds = adds[1:]
		}
	}
	for _, d := range adds { // sources beyond the base vertex count
		emit(d.src, d.dst, d.weight)
	}
	return out
}

// delta is one surviving insertion during a Materialize merge.
type delta struct {
	src, dst graph.VertexID
	weight   int32
}
