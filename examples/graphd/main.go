// Example graphd: starts the job service in-process on a loopback
// port, then drives it exactly like an HTTP client would — submits a
// mixed batch of jobs (both engines, several algorithms) against one
// shared dataset, polls them to completion, and prints the per-job
// metrics plus the catalog stats showing the dataset loaded once.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/server"
)

func main() {
	cat := catalog.New(8, 0)
	if err := cat.Register(catalog.Spec{Name: "social", Gen: "social:scale=10,ef=4,seed=7"}); err != nil {
		log.Fatal(err)
	}
	mgr := jobs.NewManager(cat, 4)
	defer mgr.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server.New(cat, mgr).Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("graphd serving on %s\n\n", base)

	requests := []jobs.Request{
		{Algorithm: "pagerank", Engine: "channel", Dataset: "social"},
		{Algorithm: "pagerank", Engine: "pregel", Dataset: "social"},
		{Algorithm: "wcc", Engine: "channel", Variant: "propagation", Dataset: "social"},
		{Algorithm: "wcc", Engine: "pregel", Dataset: "social"},
		{Algorithm: "sv", Engine: "channel", Variant: "both", Dataset: "social"},
		{Algorithm: "scc", Engine: "pregel", Dataset: "social"},
	}
	ids := make([]string, 0, len(requests))
	for _, req := range requests {
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var snap jobs.Snapshot
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			log.Fatalf("submit %+v: HTTP %d", req, resp.StatusCode)
		}
		ids = append(ids, snap.ID)
	}

	fmt.Printf("%-10s %-10s %-8s %-12s %6s %12s %10s\n",
		"job", "algorithm", "engine", "variant", "steps", "net(bytes)", "state")
	for i, id := range ids {
		snap := waitDone(base, id)
		variant := snap.Request.Variant
		if variant == "" {
			variant = "basic"
		}
		steps, netBytes := 0, int64(0)
		if snap.Metrics != nil {
			steps, netBytes = snap.Metrics.Supersteps, snap.Metrics.NetBytes
		}
		fmt.Printf("%-10s %-10s %-8s %-12s %6d %12d %10s\n",
			id, requests[i].Algorithm, requests[i].Engine, variant, steps, netBytes, snap.State)
	}

	var stats struct {
		Catalog catalog.Stats `json:"catalog"`
		Jobs    jobs.Stats    `json:"jobs"`
	}
	mustGet(base+"/v1/stats", &stats)
	fmt.Printf("\ncatalog: %d load(s), %d hit(s), %d bytes resident\n",
		stats.Catalog.Loads, stats.Catalog.Hits, stats.Catalog.Bytes)
	fmt.Printf("jobs:    %d submitted, %d done, %d failed\n",
		stats.Jobs.Submitted, stats.Jobs.Done, stats.Jobs.Failed)
	if stats.Catalog.Loads != 1 {
		fmt.Println("unexpected: dataset should have loaded exactly once")
		os.Exit(1)
	}
}

func waitDone(base, id string) jobs.Snapshot {
	for {
		var snap jobs.Snapshot
		mustGet(base+"/v1/jobs/"+id, &snap)
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustGet(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
