// Connected components with the S-V algorithm, composing two optimized
// channels — the paper's headline example (§III-C): a RequestRespond
// channel fetches each vertex's grandparent without hub congestion, a
// ScatterCombine channel carries the static neighborhood broadcast, and
// a CombinedMessage channel min-merges the root updates. The program
// also runs the unoptimized variant to show the composition payoff.
//
// Run: go run ./examples/connectedcomponents
package main

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A dense undirected social graph (Twitter stand-in).
	g := graph.SocialRMAT(11, 16, 3)
	part, err := core.HashPartition(g.NumVertices(), 8)
	if err != nil {
		panic(err)
	}
	opts := algorithms.Options{Part: part, MaxSupersteps: 100000}

	comps, mBasic, err := algorithms.SVChannel(g, opts)
	if err != nil {
		panic(err)
	}
	_, mBoth, err := algorithms.SVBoth(g, opts)
	if err != nil {
		panic(err)
	}

	distinct := map[graph.VertexID]int{}
	for _, c := range comps {
		distinct[c]++
	}
	largest := 0
	for _, n := range distinct {
		if n > largest {
			largest = n
		}
	}

	fmt.Printf("S-V on %d vertices / %d edges: %d components, largest %d\n",
		g.NumVertices(), g.NumEdges(), len(distinct), largest)
	fmt.Printf("%-34s %12s %12s %8s\n", "program", "runtime", "msg(MB)", "steps")
	for _, r := range []struct {
		name string
		m    core.Metrics
	}{
		{"standard channels", mBasic},
		{"reqresp + scatter-combine", mBoth},
	} {
		fmt.Printf("%-34s %12v %12.2f %8d\n", r.name,
			r.m.SimTime().Round(1000), float64(r.m.Comm.NetworkBytes)/1e6, r.m.Supersteps)
	}
	fmt.Printf("\ncomposition speedup: %.2fx runtime, %.2fx message volume\n",
		mBasic.SimTime().Seconds()/mBoth.SimTime().Seconds(),
		float64(mBasic.Comm.NetworkBytes)/float64(mBoth.Comm.NetworkBytes))
}
