// Strongly connected components with the Min-Label algorithm, using the
// Propagation channel for the forward/backward label propagation — the
// paper's "quick fix" for the algorithm's slow convergence (§V-C2,
// Table VII). The example compares against the standard-channel
// implementation and verifies both against Tarjan's algorithm.
//
// Run: go run ./examples/scc
package main

import (
	"fmt"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

func main() {
	// A directed power-law graph (Wikipedia stand-in) with many
	// nontrivial SCCs.
	g := graph.RMAT(11, 6, 9, graph.RMATOptions{NoSelfLoops: true})
	part, err := core.HashPartition(g.NumVertices(), 8)
	if err != nil {
		panic(err)
	}
	opts := algorithms.Options{Part: part, MaxSupersteps: 200000}

	basic, mBasic, err := algorithms.SCCChannel(g, opts)
	if err != nil {
		panic(err)
	}
	prop, mProp, err := algorithms.SCCPropagation(g, opts)
	if err != nil {
		panic(err)
	}

	oracle := seq.SCC(g)
	for v := range oracle {
		if basic[v] != oracle[v] || prop[v] != oracle[v] {
			panic(fmt.Sprintf("SCC mismatch at vertex %d", v))
		}
	}

	counts := map[graph.VertexID]int{}
	for _, c := range prop {
		counts[c]++
	}
	largest := 0
	for _, n := range counts {
		if n > largest {
			largest = n
		}
	}

	fmt.Printf("Min-Label SCC on %d vertices / %d edges (verified against Tarjan)\n",
		g.NumVertices(), g.NumEdges())
	fmt.Printf("%d SCCs, largest has %d vertices\n\n", len(counts), largest)
	fmt.Printf("%-28s %12s %12s %8s\n", "program", "runtime", "msg(MB)", "steps")
	for _, r := range []struct {
		name string
		m    core.Metrics
	}{
		{"standard channels", mBasic},
		{"propagation channel", mProp},
	} {
		fmt.Printf("%-28s %12v %12.2f %8d\n", r.name,
			r.m.SimTime().Round(1000), float64(r.m.Comm.NetworkBytes)/1e6, r.m.Supersteps)
	}
	fmt.Printf("\npropagation speedup: %.2fx runtime, %.1fx fewer supersteps\n",
		mBasic.SimTime().Seconds()/mProp.SimTime().Seconds(),
		float64(mBasic.Supersteps)/float64(mProp.Supersteps))
}
