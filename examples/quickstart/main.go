// Quickstart: PageRank written against the channel API, following the
// paper's Fig. 1 line by line — a CombinedMessage channel carries the
// rank shares and an Aggregator redistributes the dead-end mass.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ser"
)

func main() {
	// A small power-law web graph (Wikipedia stand-in) on 4 simulated
	// workers.
	g := graph.RMAT(10, 8, 7, graph.RMATOptions{NoSelfLoops: true})
	part, err := core.HashPartition(g.NumVertices(), 4)
	if err != nil {
		panic(err)
	}
	const iterations = 30

	pr := make([]float64, g.NumVertices())

	met, err := core.Run(core.Config{Part: part}, func(w *core.Worker) {
		// Two channels, exactly as in the paper's PageRankWorker.
		sum := func(a, b float64) float64 { return a + b }
		msg := core.NewCombinedMessage[float64](w, ser.Float64Codec{}, sum)
		agg := core.NewAggregator[float64](w, ser.Float64Codec{}, sum, 0)
		n := float64(w.NumVertices())
		local := make([]float64, w.LocalCount())

		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				local[li] = 1.0 / n
			} else {
				s := agg.Result() / n // the "sink node" mass
				m, _ := msg.Message(li)
				local[li] = 0.15/n + 0.85*(m+s)
			}
			if w.Superstep() <= iterations {
				nbrs := g.Neighbors(w.GlobalID(li))
				if len(nbrs) > 0 {
					share := local[li] / float64(len(nbrs))
					for _, v := range nbrs {
						msg.SendMessage(v, share)
					}
				} else {
					agg.Add(local[li]) // dead end: hand mass to the sink
				}
			} else {
				// write back the final rank and stop
				pr[w.GlobalID(li)] = local[li]
				w.VoteToHalt()
			}
		}
	})
	if err != nil {
		panic(err)
	}

	type ranked struct {
		id graph.VertexID
		pr float64
	}
	top := make([]ranked, 0, len(pr))
	for id, v := range pr {
		top = append(top, ranked{graph.VertexID(id), v})
	}
	sort.Slice(top, func(i, j int) bool { return top[i].pr > top[j].pr })

	fmt.Printf("PageRank over %d vertices / %d edges finished in %d supersteps\n",
		g.NumVertices(), g.NumEdges(), met.Supersteps)
	fmt.Printf("network volume: %.2f MB, simulated distributed runtime: %v\n",
		float64(met.Comm.NetworkBytes)/1e6, met.SimTime().Round(1000))
	fmt.Println("top 5 vertices:")
	for _, r := range top[:5] {
		fmt.Printf("  vertex %6d  rank %.6f\n", r.id, r.pr)
	}
}
