// Single-source shortest paths on a road-style network, showing the
// weighted Propagation channel (the full Fig. 7 model with an edge
// transform): distance labels relax to the global fixpoint within one
// superstep's exchange rounds instead of one hop per superstep. Both
// variants are verified against Dijkstra.
//
// Run: go run ./examples/sssp
package main

import (
	"fmt"
	"math"

	"repro/internal/algorithms"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/seq"
)

func main() {
	// A weighted grid (USA-road stand-in): large diameter makes the
	// superstep count the dominant cost for the classic algorithm.
	g := graph.Grid(150, 150, 1000, 5)
	part, err := core.HashPartition(g.NumVertices(), 8)
	if err != nil {
		panic(err)
	}
	opts := algorithms.Options{Part: part, MaxSupersteps: 100000}
	const src = 0

	classic, mClassic, err := algorithms.SSSPChannel(g, src, opts)
	if err != nil {
		panic(err)
	}
	prop, mProp, err := algorithms.SSSPPropagation(g, src, opts)
	if err != nil {
		panic(err)
	}

	oracle := seq.Dijkstra(g, src)
	reached, far := 0, int64(0)
	for v := range oracle {
		if classic[v] != oracle[v] || prop[v] != oracle[v] {
			panic(fmt.Sprintf("distance mismatch at vertex %d", v))
		}
		if oracle[v] != math.MaxInt64 {
			reached++
			if oracle[v] > far {
				far = oracle[v]
			}
		}
	}

	fmt.Printf("SSSP on %d-vertex grid (verified against Dijkstra)\n", g.NumVertices())
	fmt.Printf("reached %d vertices, eccentricity %d\n\n", reached, far)
	fmt.Printf("%-28s %12s %12s %8s\n", "program", "runtime", "msg(MB)", "steps")
	for _, r := range []struct {
		name string
		m    core.Metrics
	}{
		{"combined-message channel", mClassic},
		{"weighted propagation", mProp},
	} {
		fmt.Printf("%-28s %12v %12.2f %8d\n", r.name,
			r.m.SimTime().Round(1000), float64(r.m.Comm.NetworkBytes)/1e6, r.m.Supersteps)
	}
}
