// Example livestream: graphs that change while queries run. Starts the
// job service in-process with a mutable ("live") dataset, then drives
// it the way a production client would — a writer goroutine streams
// edge batches into POST /v1/datasets/{name}/edges while the main loop
// submits PageRank and WCC jobs over HTTP. Every job metrics payload
// reports the epoch it executed against, so the output shows queries
// riding consistent snapshots as the compactor publishes new epochs
// underneath them.
//
// With -stream FILE the writer replays a stream produced by
// graphgen -stream (each "# batch" chunk POSTed verbatim as a text
// body); without it, random batches are synthesized on the fly.
//
// Usage:
//
//	go run ./examples/livestream [-batches 24] [-ops 400] [-jobs 8] [-stream file]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/live"
	"repro/internal/server"
)

const dataset = "feed"

func main() {
	batches := flag.Int("batches", 24, "edge batches to ingest")
	ops := flag.Int("ops", 400, "mutations per synthesized batch")
	jobEvery := flag.Int("jobs", 8, "submit a PageRank+WCC pair every N batches")
	streamFile := flag.String("stream", "", "replay a graphgen -stream file instead of synthesizing batches")
	flag.Parse()

	cat := catalog.New(8, 0, catalog.WithCompaction(1500, 6))
	defer cat.Close()
	if err := cat.Register(catalog.Spec{Name: dataset, Gen: "rmat:scale=11,ef=6,seed=42", Mutable: true}); err != nil {
		log.Fatal(err)
	}
	mgr := jobs.NewManager(cat, 4)
	defer mgr.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: server.New(cat, mgr).Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("graphd serving on %s, live dataset %q\n\n", base, dataset)

	bodies := batchBodies(*batches, *ops, *streamFile)

	fmt.Printf("%-6s %-28s %-10s %-8s %6s %7s\n",
		"batch", "ingest(+ins/-del pend)", "job", "algo", "epoch", "state")
	var ids []string
	for i, body := range bodies {
		r := postText(base+"/v1/datasets/"+dataset+"/edges", body)
		fmt.Printf("%-6d +%d/-%d pend=%d epoch=%d%s\n",
			i, r.Inserts, r.Deletes, r.Live.PendingOps, r.Live.Epoch,
			compactNote(r))
		if (i+1)%*jobEvery == 0 {
			for _, algo := range []string{"pagerank", "wcc"} {
				snap := submit(base, jobs.Request{Algorithm: algo, Dataset: dataset})
				ids = append(ids, snap.ID)
			}
		}
	}

	// drain the jobs and show which epoch each one computed over
	fmt.Println()
	for _, id := range ids {
		snap := waitDone(base, id)
		epoch := uint64(0)
		if snap.Metrics != nil {
			epoch = snap.Metrics.Epoch
		}
		fmt.Printf("%-10s %-10s epoch=%-4d steps=%-5d state=%s\n",
			id, snap.Request.Algorithm, epoch,
			metricsSteps(snap), snap.State)
	}

	var detail struct {
		Live *live.Stats `json:"live"`
	}
	mustGet(base+"/v1/datasets/"+dataset, &detail)
	st := detail.Live
	fmt.Printf("\nlive stats: epoch=%d vertices=%d edges=%d compactions=%d retired=%d resident_epochs=%d\n",
		st.Epoch, st.Vertices, st.Edges, st.Compactions, st.RetiredEpochs, st.LiveEpochs)
	if st.Compactions == 0 {
		fmt.Println("unexpected: the stream should have triggered at least one compaction")
		os.Exit(1)
	}
}

// batchBodies returns the text ingest bodies: the replay chunks of a
// graphgen stream file, or synthesized random batches.
func batchBodies(n, ops int, streamFile string) []string {
	if streamFile != "" {
		data, err := os.ReadFile(streamFile)
		if err != nil {
			log.Fatal(err)
		}
		chunks := live.SplitStream(string(data))
		fmt.Printf("replaying %d batches from %s\n\n", len(chunks), streamFile)
		return chunks
	}
	rng := rand.New(rand.NewSource(99))
	const vertices = 1 << 11 // matches the generator scale above
	out := make([]string, 0, n)
	for b := 0; b < n; b++ {
		var sb strings.Builder
		for o := 0; o < ops; o++ {
			if rng.Float64() < 0.25 {
				fmt.Fprintf(&sb, "- %d %d\n", rng.Intn(vertices), rng.Intn(vertices))
			} else {
				fmt.Fprintf(&sb, "%d %d\n", rng.Intn(vertices), rng.Intn(vertices))
			}
		}
		out = append(out, sb.String())
	}
	return out
}

func compactNote(r ingestResp) string {
	if r.Live.Compactions > 0 {
		return fmt.Sprintf(" compactions=%d", r.Live.Compactions)
	}
	return ""
}

func metricsSteps(snap jobs.Snapshot) int {
	if snap.Metrics == nil {
		return 0
	}
	return snap.Metrics.Supersteps
}

type ingestResp struct {
	Inserts int        `json:"inserts"`
	Deletes int        `json:"deletes"`
	Live    live.Stats `json:"live"`
}

func postText(url, body string) ingestResp {
	resp, err := http.Post(url, "text/plain", strings.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("POST %s: HTTP %d", url, resp.StatusCode)
	}
	var r ingestResp
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		log.Fatal(err)
	}
	return r
}

func submit(base string, req jobs.Request) jobs.Snapshot {
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var snap jobs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		log.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	return snap
}

func waitDone(base, id string) jobs.Snapshot {
	for {
		var snap jobs.Snapshot
		mustGet(base+"/v1/jobs/"+id, &snap)
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustGet(url string, v any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		log.Fatal(err)
	}
}
