package repro

// One benchmark per table/figure of the paper's evaluation (§V), plus
// ablation benches for the design choices DESIGN.md calls out. Each
// bench reports, besides ns/op, the simulated distributed runtime
// (sim-ms/op: wall time + modeled network time) and the network volume
// (msgMB/op), which are the two columns of the paper's tables.
//
//	BenchmarkTable4/*   — Table IV  (pregel vs channel, 6 algorithms)
//	BenchmarkTable5/*   — Table V   (the three optimized channels)
//	BenchmarkTable6/*   — Table VI  (S-V channel combinations)
//	BenchmarkTable7/*   — Table VII (Min-Label SCC)
//	BenchmarkAblation*  — design-choice ablations

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/algorithms"
	"repro/internal/channel"
	"repro/internal/comm"
	"repro/internal/engine"
	"repro/internal/frag"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/netcomm"
	"repro/internal/partition"
	"repro/internal/pregel"
	"repro/internal/ser"
)

var (
	dsOnce sync.Once
	ds     *harness.Datasets
)

// benchData generates moderate-size datasets once (between ScaleTest
// and ScaleBench, sized so the full -bench=. sweep completes on a
// laptop core).
func benchData() *harness.Datasets {
	dsOnce.Do(func() {
		ds = &harness.Datasets{
			Wiki:     graph.RMAT(11, 8, 101, graph.RMATOptions{NoSelfLoops: true}),
			WebUK:    graph.RMAT(12, 10, 102, graph.RMATOptions{NoSelfLoops: true}),
			Facebook: graph.SocialRMAT(11, 2, 103),
			Twitter:  graph.SocialRMAT(10, 16, 104),
			Chain:    graph.Chain(20000),
			Tree:     graph.RandomTree(20000, 105),
			Road:     graph.Grid(80, 80, 1000, 106),
			RMATW:    graph.Undirectify(graph.RMAT(10, 8, 107, graph.RMATOptions{Weighted: true, MaxWeight: 1000, NoSelfLoops: true})),
		}
	})
	return ds
}

// fragment cache: benchmarks measure superstep time on pre-resolved
// shared-nothing fragments, not fragment construction, mirroring how
// the catalog serves jobs.
var (
	fragMu    sync.Mutex
	fragCache = map[fragKey]*frag.Fragments{}
)

type fragKey struct {
	g *graph.Graph
	p *partition.Partition
}

func opts(g *graph.Graph, p *partition.Partition) algorithms.Options {
	fragMu.Lock()
	defer fragMu.Unlock()
	fs, ok := fragCache[fragKey{g, p}]
	if !ok {
		fs = frag.Build(g, p)
		fragCache[fragKey{g, p}] = fs
	}
	return algorithms.Options{Part: p, Frags: fs, MaxSupersteps: 200000}
}

func reportC(b *testing.B, m engine.Metrics, err error) {
	b.Helper()
	b.ReportAllocs()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.SimTime().Milliseconds()), "sim-ms/op")
	b.ReportMetric(float64(m.Comm.NetworkBytes)/1e6, "msgMB/op")
	b.ReportMetric(float64(m.Supersteps), "steps/op")
}

func reportP(b *testing.B, m pregel.Metrics, err error) {
	b.Helper()
	b.ReportAllocs()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(m.SimTime().Milliseconds()), "sim-ms/op")
	b.ReportMetric(float64(m.Comm.NetworkBytes)/1e6, "msgMB/op")
	b.ReportMetric(float64(m.Supersteps), "steps/op")
}

const prIters = 30

// --- Table IV: basic implementations, pregel vs channel ---

func BenchmarkTable4(b *testing.B) {
	d := benchData()
	und := graph.Undirectify(d.Wiki)
	b.Run("PR/pregel", func(b *testing.B) {
		p := harness.HashPart(d.WebUK)
		o := opts(d.WebUK, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankPregel(d.WebUK, o, prIters)
			reportP(b, m, err)
		}
	})
	b.Run("PR/channel", func(b *testing.B) {
		p := harness.HashPart(d.WebUK)
		o := opts(d.WebUK, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankChannel(d.WebUK, o, prIters)
			reportC(b, m, err)
		}
	})
	b.Run("WCC/pregel", func(b *testing.B) {
		p := harness.HashPart(und)
		o := opts(und, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.WCCPregel(und, o)
			reportP(b, m, err)
		}
	})
	b.Run("WCC/channel", func(b *testing.B) {
		p := harness.HashPart(und)
		o := opts(und, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.WCCChannel(und, o)
			reportC(b, m, err)
		}
	})
	b.Run("PJ/pregel", func(b *testing.B) {
		p := harness.HashPart(d.Chain)
		o := opts(d.Chain, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpPregel(d.Chain, o)
			reportP(b, m, err)
		}
	})
	b.Run("PJ/channel", func(b *testing.B) {
		p := harness.HashPart(d.Chain)
		o := opts(d.Chain, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpChannel(d.Chain, o)
			reportC(b, m, err)
		}
	})
	b.Run("SV/pregel", func(b *testing.B) {
		p := harness.HashPart(d.Facebook)
		o := opts(d.Facebook, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.SVPregel(d.Facebook, o)
			reportP(b, m, err)
		}
	})
	b.Run("SV/channel", func(b *testing.B) {
		p := harness.HashPart(d.Facebook)
		o := opts(d.Facebook, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.SVChannel(d.Facebook, o)
			reportC(b, m, err)
		}
	})
	b.Run("MSF/pregel", func(b *testing.B) {
		p := harness.HashPart(d.Road)
		o := opts(d.Road, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.MSFPregel(d.Road, o)
			reportP(b, m, err)
		}
	})
	b.Run("MSF/channel", func(b *testing.B) {
		p := harness.HashPart(d.Road)
		o := opts(d.Road, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.MSFChannel(d.Road, o)
			reportC(b, m, err)
		}
	})
	b.Run("SCC/pregel", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.SCCPregel(d.Wiki, o)
			reportP(b, m, err)
		}
	})
	b.Run("SCC/channel", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.SCCChannel(d.Wiki, o)
			reportC(b, m, err)
		}
	})
}

// --- Table V: the three optimized channels ---

func BenchmarkTable5(b *testing.B) {
	d := benchData()
	b.Run("ScatterCombine/pregel-basic", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankPregel(d.Wiki, o, prIters)
			reportP(b, m, err)
		}
	})
	b.Run("ScatterCombine/pregel-ghost", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankPregelGhost(d.Wiki, o, prIters)
			reportP(b, m, err)
		}
	})
	b.Run("ScatterCombine/channel-basic", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankChannel(d.Wiki, o, prIters)
			reportC(b, m, err)
		}
	})
	b.Run("ScatterCombine/channel-scatter", func(b *testing.B) {
		p := harness.HashPart(d.Wiki)
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankScatter(d.Wiki, o, prIters)
			reportC(b, m, err)
		}
	})
	b.Run("RequestRespond/pregel-basic", func(b *testing.B) {
		p := harness.HashPart(d.Tree)
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpPregel(d.Tree, o)
			reportP(b, m, err)
		}
	})
	b.Run("RequestRespond/pregel-reqresp", func(b *testing.B) {
		p := harness.HashPart(d.Tree)
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpPregelReqResp(d.Tree, o)
			reportP(b, m, err)
		}
	})
	b.Run("RequestRespond/channel-basic", func(b *testing.B) {
		p := harness.HashPart(d.Tree)
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpChannel(d.Tree, o)
			reportC(b, m, err)
		}
	})
	b.Run("RequestRespond/channel-reqresp", func(b *testing.B) {
		p := harness.HashPart(d.Tree)
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpReqResp(d.Tree, o)
			reportC(b, m, err)
		}
	})

	und := graph.Undirectify(d.Wiki)
	hash := harness.HashPart(und)
	greedy := harness.GreedyPart(und)
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"hash", hash}, {"partitioned", greedy}} {
		p := t.p
		b.Run("Propagation/"+t.name+"/pregel-basic", func(b *testing.B) {
			o := opts(und, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.WCCPregel(und, o)
				reportP(b, m, err)
			}
		})
		b.Run("Propagation/"+t.name+"/blogel", func(b *testing.B) {
			o := opts(und, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.WCCBlogel(und, o)
				reportC(b, m, err)
			}
		})
		b.Run("Propagation/"+t.name+"/channel-basic", func(b *testing.B) {
			o := opts(und, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.WCCChannel(und, o)
				reportC(b, m, err)
			}
		})
		b.Run("Propagation/"+t.name+"/channel-prop", func(b *testing.B) {
			o := opts(und, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.WCCPropagation(und, o)
				reportC(b, m, err)
			}
		})
	}
}

// --- Table VI: S-V channel combinations ---

func BenchmarkTable6(b *testing.B) {
	d := benchData()
	for _, t := range []struct {
		name string
		g    *graph.Graph
	}{{"Facebook", d.Facebook}, {"Twitter", d.Twitter}} {
		g := t.g
		p := harness.HashPart(g)
		b.Run(t.name+"/1-pregel-reqresp", func(b *testing.B) {
			o := opts(g, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SVPregelReqResp(g, o)
				reportP(b, m, err)
			}
		})
		b.Run(t.name+"/2-channel-basic", func(b *testing.B) {
			o := opts(g, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SVChannel(g, o)
				reportC(b, m, err)
			}
		})
		b.Run(t.name+"/3-channel-reqresp", func(b *testing.B) {
			o := opts(g, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SVReqResp(g, o)
				reportC(b, m, err)
			}
		})
		b.Run(t.name+"/4-channel-scatter", func(b *testing.B) {
			o := opts(g, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SVScatter(g, o)
				reportC(b, m, err)
			}
		})
		b.Run(t.name+"/5-channel-both", func(b *testing.B) {
			o := opts(g, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SVBoth(g, o)
				reportC(b, m, err)
			}
		})
	}
}

// --- Table VII: Min-Label SCC ---

func BenchmarkTable7(b *testing.B) {
	d := benchData()
	hash := harness.HashPart(d.Wiki)
	greedy := harness.GreedyPart(d.Wiki)
	for _, t := range []struct {
		name string
		p    *partition.Partition
	}{{"hash", hash}, {"partitioned", greedy}} {
		p := t.p
		b.Run(t.name+"/1-pregel-basic", func(b *testing.B) {
			o := opts(d.Wiki, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SCCPregel(d.Wiki, o)
				reportP(b, m, err)
			}
		})
		b.Run(t.name+"/2-channel-basic", func(b *testing.B) {
			o := opts(d.Wiki, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SCCChannel(d.Wiki, o)
				reportC(b, m, err)
			}
		})
		b.Run(t.name+"/3-channel-prop", func(b *testing.B) {
			o := opts(d.Wiki, p)
			for i := 0; i < b.N; i++ {
				_, m, err := algorithms.SCCPropagation(d.Wiki, o)
				reportC(b, m, err)
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationCombinePath compares receiver-side dense combining
// (ScatterCombine's in-array) against hash-map combining
// (CombinedMessage) for the same static traffic: PageRank's inner loop.
func BenchmarkAblationCombinePath(b *testing.B) {
	d := benchData()
	p := harness.HashPart(d.Wiki)
	b.Run("hashmap", func(b *testing.B) {
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankChannel(d.Wiki, o, 10)
			reportC(b, m, err)
		}
	})
	b.Run("presorted-scan", func(b *testing.B) {
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankScatter(d.Wiki, o, 10)
			reportC(b, m, err)
		}
	})
}

// BenchmarkAblationReplyFormat quantifies the §V-B2 reply-format trick:
// the channel's ordered bare-value replies vs Pregel+'s (id, value)
// pairs, on the hub-heavy tree workload.
func BenchmarkAblationReplyFormat(b *testing.B) {
	d := benchData()
	p := harness.HashPart(d.Tree)
	b.Run("value-only-replies", func(b *testing.B) {
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpReqResp(d.Tree, o)
			reportC(b, m, err)
		}
	})
	b.Run("id-value-replies", func(b *testing.B) {
		o := opts(d.Tree, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PointerJumpPregelReqResp(d.Tree, o)
			reportP(b, m, err)
		}
	})
}

// BenchmarkAblationMirrorChannel compares the Mirror extension channel
// (ghost mode as a channel) against the engine-level ghost mode and the
// plain scatter channel on the hub-heavy web graph.
func BenchmarkAblationMirrorChannel(b *testing.B) {
	d := benchData()
	p := harness.HashPart(d.Wiki)
	b.Run("mirror-channel", func(b *testing.B) {
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankMirror(d.Wiki, o, 10)
			reportC(b, m, err)
		}
	})
	b.Run("pregel-ghost-mode", func(b *testing.B) {
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankPregelGhost(d.Wiki, o, 10)
			reportP(b, m, err)
		}
	})
	b.Run("scatter-channel", func(b *testing.B) {
		o := opts(d.Wiki, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.PageRankScatter(d.Wiki, o, 10)
			reportC(b, m, err)
		}
	})
}

// BenchmarkAblationPropagationRounds compares the in-superstep
// multi-round propagation against its block-centric restriction (one
// exchange per superstep) — the design choice that separates the
// Propagation channel from a Blogel block program.
func BenchmarkAblationPropagationRounds(b *testing.B) {
	d := benchData()
	und := graph.Undirectify(d.Wiki)
	p := harness.GreedyPart(und)
	b.Run("multi-round", func(b *testing.B) {
		o := opts(und, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.WCCPropagation(und, o)
			reportC(b, m, err)
		}
	})
	b.Run("one-round-per-step", func(b *testing.B) {
		o := opts(und, p)
		for i := 0; i < b.N; i++ {
			_, m, err := algorithms.WCCBlogel(und, o)
			reportC(b, m, err)
		}
	})
}

// BenchmarkAblationCostModel shows the raw in-process wall time next to
// the simulated distributed time for one representative workload, so
// readers can see how much of the reported runtime is modeled network.
func BenchmarkAblationCostModel(b *testing.B) {
	d := benchData()
	p := harness.HashPart(d.Facebook)
	for _, t := range []struct {
		name string
		cost comm.CostModel
	}{
		{"750Mbps", comm.CostModel{}},
		{"10Gbps", comm.CostModel{BytesPerSecond: 1.25e9}},
	} {
		cost := t.cost
		b.Run(t.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				states := algorithms.Options{Part: p, MaxSupersteps: 200000}
				_ = states
				m, err := engine.Run(engine.Config{Part: p, Cost: cost, MaxSupersteps: 200000}, svSetup(d.Facebook, p))
				reportC(b, m, err)
			}
		})
	}
}

// svSetup builds a neighborhood-scatter kernel (10 supersteps of
// combined float messages) for the cost-model ablation.
func svSetup(g *graph.Graph, p *partition.Partition) func(w *engine.Worker) {
	return func(w *engine.Worker) {
		vals := make([]float64, w.LocalCount())
		msg := channel.NewCombinedMessage[float64](w, ser.Float64Codec{},
			func(a, b float64) float64 { return a + b })
		w.Compute = func(li int) {
			if w.Superstep() == 1 {
				vals[li] = 1
			}
			if w.Superstep() <= 10 {
				for _, v := range g.Neighbors(w.GlobalID(li)) {
					msg.SendMessage(v, vals[li])
				}
			} else {
				w.VoteToHalt()
			}
		}
	}
}

// --- Distributed exchange: hub relay vs p2p mesh data plane ---

// BenchmarkDistributedExchange pins the data-plane comparison the p2p
// transport exists for: m socket-fabric clients over loopback TCP run
// all-to-all exchange rounds (the engines' exact per-round protocol:
// Flush, barrier, consume, reducing crossing, release) on the hub
// relay, the static direct mesh and the adaptive lazy mesh. hubB/op is
// the frame volume transiting the coordinator per round — the whole
// exchange on the hub plane, zero under static p2p, the cold pairs'
// share under p2p-adaptive. winB is the mesh's standing window memory
// at the end of the run (the sum of granted receive windows): the
// static mesh bills one DefaultWindowBytes per directed pair up front,
// the adaptive mesh only for promoted pairs, retuned to the observed
// round volume.
//
// The skew sub-cases replay the placement-aware traffic shape the lazy
// mesh exists for — one hot pair carrying almost all the volume over a
// background trickle, the shape a locality-aware placement produces —
// where the adaptive plane promotes only the hot pair and keeps every
// cold window off the books.
func BenchmarkDistributedExchange(b *testing.B) {
	const hotFrame, coldFrame = 64 << 10, 512
	uniform := func(src, dst int) int { return hotFrame }
	skew := func(src, dst int) int {
		if src == 0 && dst == 1 {
			return hotFrame
		}
		return coldFrame
	}
	for _, plane := range []string{netcomm.DataPlaneHub, netcomm.DataPlaneP2P, netcomm.DataPlaneP2PAdaptive} {
		b.Run(plane, func(b *testing.B) { benchExchange(b, plane, uniform) })
	}
	for _, plane := range []string{netcomm.DataPlaneP2P, netcomm.DataPlaneP2PAdaptive} {
		b.Run("skew/"+plane, func(b *testing.B) { benchExchange(b, plane, skew) })
	}
}

func benchExchange(b *testing.B, plane string, frameFor func(src, dst int) int) {
	const m = 4
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hub := netcomm.NewHub(m, comm.CostModel{}, ln)
	defer hub.Close()
	clients := make([]*netcomm.Client, m)
	errs := make([]error, m)
	var dial sync.WaitGroup
	for i := 0; i < m; i++ {
		dial.Add(1)
		go func(i int) {
			defer dial.Done()
			clients[i], errs[i] = netcomm.DialConfig(netcomm.Config{
				Network: "tcp", Addr: ln.Addr().String(),
				Lo: i, Hi: i, M: m, DataPlane: plane,
			})
		}(i)
	}
	dial.Wait()
	for _, err := range errs {
		if err != nil {
			b.Fatal(err)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	if err := hub.WaitJoined(time.Minute); err != nil {
		b.Fatal(err)
	}

	var maxFrame, roundTotal int
	for src := 0; src < m; src++ {
		for dst := 0; dst < m; dst++ {
			if src == dst {
				continue
			}
			f := frameFor(src, dst)
			roundTotal += f
			if f > maxFrame {
				maxFrame = f
			}
		}
	}
	payload := make([]byte, maxFrame)
	b.SetBytes(int64(roundTotal))
	b.ReportAllocs()
	b.ResetTimer()
	var wg sync.WaitGroup
	for i := 0; i < m; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep := clients[i].Endpoint(i)
			bar := clients[i].Barrier()
			for n := 0; n < b.N; n++ {
				for dst := 0; dst < m; dst++ {
					if dst != i {
						frame := frameFor(i, dst)
						copy(ep.Out(dst).Extend(frame), payload[:frame])
					}
				}
				if err := ep.Flush(); err != nil {
					b.Error(err)
					return
				}
				if !bar.Wait() {
					b.Error("barrier aborted")
					return
				}
				for src := 0; src < m; src++ {
					if src != i {
						ep.In(src)
					}
				}
				if _, ok := bar.AllReduce(0); !ok {
					b.Error("reduce aborted")
					return
				}
				ep.Release()
			}
		}(i)
	}
	wg.Wait()
	b.StopTimer()
	b.ReportMetric(float64(hub.DataBytes())/float64(b.N), "hubB/op")
	if plane != netcomm.DataPlaneHub {
		// Standing window memory: what the mesh's receive windows pin at
		// the end of the run. Constant per directed pair on the static
		// mesh; on the adaptive mesh, only promoted pairs contribute, at
		// whatever size their controllers converged to.
		var granted int64
		for _, c := range clients {
			for _, cs := range c.ConnStats() {
				granted += cs.RecvWindow
			}
		}
		b.ReportMetric(float64(granted), "winB")
	}
}
