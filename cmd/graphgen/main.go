// Command graphgen generates the synthetic datasets used in the
// reproduction and writes them as text edge lists or binary snapshots.
//
// Usage:
//
//	graphgen -kind rmat -scale 14 -ef 10 -seed 1 -o web.el
//	graphgen -kind social -scale 12 -ef 24 -o twitter.el
//	graphgen -kind chain -n 100000 -o chain.el
//	graphgen -kind tree -n 100000 -o tree.el
//	graphgen -kind grid -rows 300 -cols 300 -maxw 1000 -o road.el
//	graphgen -kind digraph -n 10000 -m 50000 -o random.el
//
// With -o ending in ".bin" a binary CSR snapshot is written instead of
// a text edge list; -placements embeds named owner vectors so graphd
// restarts skip re-partitioning:
//
//	graphgen -kind grid -rows 300 -cols 300 -o road.bin -placements hash,greedy -workers 8
//
// With -stream N the generator additionally emits a replayable
// edge-batch stream file (live.WriteStream format: "# batch k"
// separators between text edge-batch chunks) of N random mutation
// batches against the generated graph — inserts of fresh edges and
// deletions of currently present ones, tracked so every delete refers
// to an edge that exists at that point of the replay. The stream is
// what examples/livestream and POST /v1/datasets/{name}/edges consume:
//
//	graphgen -kind rmat -scale 12 -ef 8 -o base.el \
//	    -stream 50 -stream-ops 500 -stream-del 0.3 -stream-o base.stream
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/live"
	"repro/internal/partition"
)

func main() {
	kind := flag.String("kind", "rmat", "rmat|social|chain|tree|grid|digraph")
	scale := flag.Int("scale", 10, "log2 vertices (rmat, social)")
	ef := flag.Int("ef", 8, "edge factor (rmat, social)")
	n := flag.Int("n", 1000, "vertices (chain, tree, digraph)")
	m := flag.Int("m", 4000, "edges (digraph)")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	maxw := flag.Int("maxw", 100, "max edge weight (grid, weighted rmat)")
	weighted := flag.Bool("w", false, "weighted edges (rmat)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout; *.bin writes a binary snapshot)")
	placements := flag.String("placements", "", "comma-separated placements to embed in a .bin snapshot (hash,greedy)")
	workers := flag.Int("workers", 8, "worker count for embedded placements")
	streamN := flag.Int("stream", 0, "emit a replayable stream of this many edge-mutation batches")
	streamOps := flag.Int("stream-ops", 256, "mutations per stream batch")
	streamDel := flag.Float64("stream-del", 0.2, "fraction of stream mutations that are deletions")
	streamOut := flag.String("stream-o", "", "stream output file (required with -stream)")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = graph.RMAT(*scale, *ef, *seed, graph.RMATOptions{
			Weighted: *weighted, MaxWeight: int32(*maxw), NoSelfLoops: true})
	case "social":
		g = graph.SocialRMAT(*scale, *ef, *seed)
	case "chain":
		g = graph.Chain(*n)
	case "tree":
		g = graph.RandomTree(*n, *seed)
	case "grid":
		g = graph.Grid(*rows, *cols, int32(*maxw), *seed)
	case "digraph":
		g = graph.RandomDigraph(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *streamN > 0 {
		if *streamOut == "" {
			fmt.Fprintln(os.Stderr, "graphgen: -stream requires -stream-o")
			os.Exit(2)
		}
		batches := mutationStream(g, *streamN, *streamOps, *streamDel, *seed)
		f, err := os.Create(*streamOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		if err := live.WriteStream(f, batches); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "graphgen: wrote %d batches x %d ops to %s\n",
			*streamN, *streamOps, *streamOut)
	}

	if *placements != "" && !strings.HasSuffix(*out, graph.SnapshotExt) {
		fmt.Fprintf(os.Stderr, "graphgen: -placements requires a %s output (-o)\n", graph.SnapshotExt)
		os.Exit(2)
	}
	if strings.HasSuffix(*out, graph.SnapshotExt) {
		var embedded []graph.Placement
		if *placements != "" {
			for _, name := range strings.Split(*placements, ",") {
				p, err := partition.ByName(strings.TrimSpace(name), g, *workers)
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
					os.Exit(2)
				}
				embedded = append(embedded, graph.Placement{
					Name: strings.TrimSpace(name), Workers: *workers, Owner: p.Owners()})
			}
		}
		if err := graph.WriteSnapshotFile(*out, g, embedded); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: %d vertices, %d edges (avg deg %.2f, max %d)\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())
}

// mutationStream generates batches random ops against g, tracking the
// present edge set with live's last-write-wins semantics so every
// deletion refers to an edge that exists at its point in the replay.
// Inserts stay within g's vertex range; weights are drawn when g is
// weighted.
func mutationStream(g *graph.Graph, batches, opsPer int, delFrac float64, seed int64) []live.Batch {
	rng := rand.New(rand.NewSource(seed + 7))
	n := g.NumVertices()
	key := func(s, d graph.VertexID) uint64 { return uint64(s)<<32 | uint64(d) }
	// present edge pairs: slice for random pick, map for O(1) removal
	pairs := make([]uint64, 0, g.NumEdges())
	index := make(map[uint64]int, g.NumEdges())
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.VertexID(u)) {
			k := key(graph.VertexID(u), v)
			if _, dup := index[k]; dup {
				continue // parallel base edges collapse to one live pair
			}
			index[k] = len(pairs)
			pairs = append(pairs, k)
		}
	}
	remove := func(k uint64) {
		i := index[k]
		last := pairs[len(pairs)-1]
		pairs[i] = last
		index[last] = i
		pairs = pairs[:len(pairs)-1]
		delete(index, k)
	}
	add := func(k uint64) {
		if _, ok := index[k]; ok {
			return
		}
		index[k] = len(pairs)
		pairs = append(pairs, k)
	}
	out := make([]live.Batch, 0, batches)
	for b := 0; b < batches; b++ {
		var batch live.Batch
		for o := 0; o < opsPer; o++ {
			if rng.Float64() < delFrac && len(pairs) > 0 {
				k := pairs[rng.Intn(len(pairs))]
				remove(k)
				batch.Ops = append(batch.Ops, live.Op{
					Src: graph.VertexID(k >> 32), Dst: graph.VertexID(uint32(k)), Del: true})
				continue
			}
			src := graph.VertexID(rng.Intn(n))
			dst := graph.VertexID(rng.Intn(n))
			op := live.Op{Src: src, Dst: dst}
			if g.Weighted() {
				op.Weight = 1 + rng.Int31n(100)
			}
			add(key(src, dst))
			batch.Ops = append(batch.Ops, op)
		}
		out = append(out, batch)
	}
	return out
}
