// Command graphgen generates the synthetic datasets used in the
// reproduction and writes them as text edge lists or binary snapshots.
//
// Usage:
//
//	graphgen -kind rmat -scale 14 -ef 10 -seed 1 -o web.el
//	graphgen -kind social -scale 12 -ef 24 -o twitter.el
//	graphgen -kind chain -n 100000 -o chain.el
//	graphgen -kind tree -n 100000 -o tree.el
//	graphgen -kind grid -rows 300 -cols 300 -maxw 1000 -o road.el
//	graphgen -kind digraph -n 10000 -m 50000 -o random.el
//
// With -o ending in ".bin" a binary CSR snapshot is written instead of
// a text edge list; -placements embeds named owner vectors so graphd
// restarts skip re-partitioning:
//
//	graphgen -kind grid -rows 300 -cols 300 -o road.bin -placements hash,greedy -workers 8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
	"repro/internal/partition"
)

func main() {
	kind := flag.String("kind", "rmat", "rmat|social|chain|tree|grid|digraph")
	scale := flag.Int("scale", 10, "log2 vertices (rmat, social)")
	ef := flag.Int("ef", 8, "edge factor (rmat, social)")
	n := flag.Int("n", 1000, "vertices (chain, tree, digraph)")
	m := flag.Int("m", 4000, "edges (digraph)")
	rows := flag.Int("rows", 100, "grid rows")
	cols := flag.Int("cols", 100, "grid cols")
	maxw := flag.Int("maxw", 100, "max edge weight (grid, weighted rmat)")
	weighted := flag.Bool("w", false, "weighted edges (rmat)")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "", "output file (default stdout; *.bin writes a binary snapshot)")
	placements := flag.String("placements", "", "comma-separated placements to embed in a .bin snapshot (hash,greedy)")
	workers := flag.Int("workers", 8, "worker count for embedded placements")
	flag.Parse()

	var g *graph.Graph
	switch *kind {
	case "rmat":
		g = graph.RMAT(*scale, *ef, *seed, graph.RMATOptions{
			Weighted: *weighted, MaxWeight: int32(*maxw), NoSelfLoops: true})
	case "social":
		g = graph.SocialRMAT(*scale, *ef, *seed)
	case "chain":
		g = graph.Chain(*n)
	case "tree":
		g = graph.RandomTree(*n, *seed)
	case "grid":
		g = graph.Grid(*rows, *cols, int32(*maxw), *seed)
	case "digraph":
		g = graph.RandomDigraph(*n, *m, *seed)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if *placements != "" && !strings.HasSuffix(*out, graph.SnapshotExt) {
		fmt.Fprintf(os.Stderr, "graphgen: -placements requires a %s output (-o)\n", graph.SnapshotExt)
		os.Exit(2)
	}
	if strings.HasSuffix(*out, graph.SnapshotExt) {
		var embedded []graph.Placement
		if *placements != "" {
			for _, name := range strings.Split(*placements, ",") {
				p, err := partition.ByName(strings.TrimSpace(name), g, *workers)
				if err != nil {
					fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
					os.Exit(2)
				}
				embedded = append(embedded, graph.Placement{
					Name: strings.TrimSpace(name), Workers: *workers, Owner: p.Owners()})
			}
		}
		if err := graph.WriteSnapshotFile(*out, g, embedded); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Fprintf(os.Stderr, "graphgen: %d vertices, %d edges (avg deg %.2f, max %d)\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree(), g.MaxDegree())
}
