// Command graphd serves graph-analytics jobs over HTTP: a long-lived
// daemon wrapping the channel engine and the Pregel baseline behind the
// /v1 JSON API (see internal/server), with a shared graph catalog so
// concurrent jobs against the same dataset load it once.
//
// Usage:
//
//	graphd [-addr :8372] [-workers 4] [-builtin test|bench|none]
//	       [-dataset name=spec ...] [-preload name,name]
//	       [-retain 256] [-queue 64] [-max-graph-bytes 0]
//	       [-compact-ops 65536] [-compact-batches 64]
//	       [-worker-procs 0] [-graphworker-bin path]
//	       [-join-timeout 0] [-result-timeout 0] [-wall-timeout 0]
//	       [-max-recoveries 0] [-ckpt-interval 0]
//	       [-pprof] [-log-level info]
//
// Observability: GET /metrics serves the daemon's counters in the
// Prometheus text format (including graphd_build_info and
// graphd_uptime_seconds), GET /v1/jobs/{id}/trace serves a job's
// per-worker superstep timeline, GET /v1/jobs/{id}/flows its
// per-(src,dst) flow matrix, GET /v1/jobs/{id}/diagnosis an automatic
// bottleneck report, GET /v1/jobs/{id}/events a live SSE stream of
// state transitions and completed supersteps, and -pprof mounts
// net/http/pprof under /debug/pprof/ for live CPU and heap profiles.
// Logs go to stderr as logfmt lines (-log-level debug|info|warn|error).
//
// With -worker-procs N every job runs its simulated cluster as N
// graphworker subprocesses joined over the socket fabric (Unix sockets)
// instead of goroutines over shared memory: the daemon exports each
// job's graph view plus owner vector as a binary snapshot, the
// subprocesses rebuild identical partitions from it, and partial
// results are merged back by vertex ownership. -graphworker-bin
// overrides the worker executable (default: the graphworker binary next
// to graphd).
//
// A dataset spec is either a file path (text edge list, or a binary
// snapshot written by graph.WriteBinary; "<path>.bin" siblings are
// preferred) or a generator expression such as
// "gen:rmat:scale=14,ef=10,seed=1" — see catalog.ParseGen. A "live:"
// prefix registers the dataset mutable: edge batches may be POSTed to
// /v1/datasets/{name}/edges and a background compactor folds them into
// new epochs once the delta log crosses the -compact-* thresholds.
// Examples:
//
//	graphd -dataset web=data/web.el -dataset road=gen:grid:rows=300,cols=300,maxw=1000 -preload web
//	graphd -dataset stream=live:gen:rmat:scale=12,ef=8,seed=9 -compact-ops 20000
//
// Submit a job, ingest edges:
//
//	curl -s localhost:8372/v1/jobs -d '{"algorithm":"pagerank","dataset":"web","engine":"channel"}'
//	curl -s localhost:8372/v1/datasets/feed/edges -d '7 12
//	- 3 4'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/jobs"
	"repro/internal/netcomm"
	"repro/internal/obs"
	"repro/internal/server"
)

// builtinDatasets mirrors the harness stand-ins (Table III) as
// generator specs, so a bare `graphd` is immediately usable.
func builtinDatasets(scale string) []catalog.Spec {
	switch scale {
	case "test":
		return []catalog.Spec{
			{Name: "wiki", Gen: "rmat:scale=9,ef=6,seed=101"},
			{Name: "webuk", Gen: "rmat:scale=10,ef=8,seed=102"},
			{Name: "facebook", Gen: "social:scale=9,ef=2,seed=103"},
			{Name: "twitter", Gen: "social:scale=8,ef=12,seed=104"},
			{Name: "chain", Gen: "chain:n=2000"},
			{Name: "tree", Gen: "tree:n=2000,seed=105"},
			{Name: "road", Gen: "grid:rows=40,cols=40,maxw=1000,seed=106"},
			{Name: "rmatw", Gen: "rmat:scale=8,ef=8,seed=107,weighted,maxw=1000,undirected"},
			{Name: "feed", Gen: "rmat:scale=9,ef=4,seed=108", Mutable: true},
		}
	case "bench":
		return []catalog.Spec{
			{Name: "wiki", Gen: "rmat:scale=14,ef=10,seed=101"},
			{Name: "webuk", Gen: "rmat:scale=15,ef=16,seed=102"},
			{Name: "facebook", Gen: "social:scale=14,ef=2,seed=103"},
			{Name: "twitter", Gen: "social:scale=12,ef=24,seed=104"},
			{Name: "chain", Gen: "chain:n=200000"},
			{Name: "tree", Gen: "tree:n=200000,seed=105"},
			{Name: "road", Gen: "grid:rows=300,cols=300,maxw=1000,seed=106"},
			{Name: "rmatw", Gen: "rmat:scale=13,ef=8,seed=107,weighted,maxw=1000,undirected"},
			{Name: "feed", Gen: "rmat:scale=13,ef=6,seed=108", Mutable: true},
		}
	default:
		return nil
	}
}

// version is stamped at build time via
// -ldflags "-X main.version=v1.2.3"; it labels graphd_build_info.
var version = "dev"

func main() {
	addr := flag.String("addr", ":8372", "listen address")
	workers := flag.Int("workers", 4, "job pool size (concurrent jobs)")
	simWorkers := flag.Int("sim-workers", 8, "simulated cluster nodes per job (the paper uses 8)")
	builtin := flag.String("builtin", "test", "register built-in datasets: test, bench or none")
	retain := flag.Int("retain", 256, "finished jobs (and results) to retain")
	queueDepth := flag.Int("queue", 64, "pending job queue depth")
	maxGraphBytes := flag.Int64("max-graph-bytes", 0, "approximate catalog byte budget (0 = unlimited)")
	compactOps := flag.Int("compact-ops", 0, "live datasets: compact once this many delta ops are pending (0 = default 65536)")
	compactBatches := flag.Int("compact-batches", 0, "live datasets: compact once this many delta batches are pending (0 = default 64)")
	workerProcs := flag.Int("worker-procs", 0, "run each job's workers as this many graphworker subprocesses over the socket fabric (0 = in-process)")
	workerBin := flag.String("graphworker-bin", "", "graphworker executable for -worker-procs (default: sibling of graphd)")
	dataPlane := flag.String("data-plane", "hub", "distributed jobs: data plane, hub (frames relayed by the coordinator), p2p (direct worker mesh with credit flow control) or p2p-adaptive (lazy mesh with auto-tuned windows)")
	windowBytes := flag.Int("window-bytes", netcomm.DefaultWindowBytes, "distributed jobs with a p2p data plane: per-peer receive window in bytes (initial value on the adaptive plane)")
	windowMin := flag.Int("window-min", netcomm.DefaultWindowMin, "distributed jobs with -data-plane p2p-adaptive: smallest window the per-connection tuner may shrink to")
	windowMax := flag.Int("window-max", netcomm.DefaultWindowMax, "distributed jobs with -data-plane p2p-adaptive: largest window the per-connection tuner may grow to")
	promoteBytes := flag.Int("promote-bytes", netcomm.DefaultPromoteBytes, "distributed jobs with -data-plane p2p-adaptive: cumulative relayed bytes at which a cold pair is promoted to a direct connection")
	joinTimeout := flag.Duration("join-timeout", 0, "distributed jobs: worker join deadline (0 = 30s default)")
	resultTimeout := flag.Duration("result-timeout", 0, "distributed jobs: result settle deadline (0 = 30s default)")
	wallTimeout := flag.Duration("wall-timeout", 0, "distributed jobs: per-attempt wall-clock cap, the stalled-worker detector (0 = off)")
	maxRecoveries := flag.Int("max-recoveries", 0, "distributed jobs: recovery attempts after a worker dies mid-run (0 = fail fast)")
	ckptInterval := flag.Int("ckpt-interval", 0, "distributed jobs with -max-recoveries: supersteps between checkpoints (0 = every superstep)")
	preload := flag.String("preload", "", "comma-separated datasets to load at startup")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	var datasetFlags []string
	flag.Func("dataset", "register a dataset as name=path or name=gen:EXPR; a live: prefix makes it mutable (repeatable)", func(v string) error {
		datasetFlags = append(datasetFlags, v)
		return nil
	})
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "graphd: bad -log-level %q (want debug, info, warn or error)\n", *logLevel)
		os.Exit(1)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	slog.SetDefault(log)
	fatal := func(msg string, args ...any) {
		log.Error(msg, args...)
		os.Exit(1)
	}

	// Vet the data-plane knobs up front, even when -worker-procs is off:
	// a typo'd plane name or inverted window bound should stop the daemon
	// at startup, not surface on the first distributed job.
	if err := netcomm.ValidatePlaneConfig(*dataPlane, *windowBytes, *windowMin, *windowMax, *promoteBytes); err != nil {
		fatal("bad data-plane configuration", "err", err)
	}

	cat := catalog.New(*simWorkers, *maxGraphBytes,
		catalog.WithCompaction(*compactOps, *compactBatches))
	defer cat.Close()
	if *builtin != "none" {
		specs := builtinDatasets(*builtin)
		if specs == nil {
			fatal("unknown -builtin (want test, bench or none)", "builtin", *builtin)
		}
		for _, spec := range specs {
			if err := cat.Register(spec); err != nil {
				fatal("dataset registration failed", "err", err)
			}
		}
	}
	for _, df := range datasetFlags {
		name, val, ok := strings.Cut(df, "=")
		if !ok || name == "" || val == "" {
			fatal("bad -dataset (want name=path or name=gen:EXPR)", "dataset", df)
		}
		spec := catalog.Spec{Name: name}
		if rest, isLive := strings.CutPrefix(val, "live:"); isLive {
			spec.Mutable = true
			val = rest
		}
		if expr, isGen := strings.CutPrefix(val, "gen:"); isGen {
			spec.Gen = expr
		} else {
			spec.Path = val
		}
		if err := cat.Register(spec); err != nil {
			fatal("dataset registration failed", "err", err)
		}
	}

	reg := obs.NewRegistry()
	mgrOpts := []jobs.Option{jobs.WithRetention(*retain), jobs.WithQueueDepth(*queueDepth),
		jobs.WithLogger(log), jobs.WithMetrics(reg)}
	if *workerProcs > 0 {
		bin := *workerBin
		if bin == "" {
			self, err := os.Executable()
			if err != nil {
				fatal("-worker-procs needs -graphworker-bin", "err", err)
			}
			bin = filepath.Join(filepath.Dir(self), "graphworker")
		}
		if _, err := os.Stat(bin); err != nil {
			fatal("graphworker binary missing (build cmd/graphworker or pass -graphworker-bin)", "err", err)
		}
		mgrOpts = append(mgrOpts, jobs.WithWorkerProcs(*workerProcs, bin))
		mgrOpts = append(mgrOpts, jobs.WithDataPlane(*dataPlane, *windowBytes),
			jobs.WithWindowBounds(*windowMin, *windowMax, *promoteBytes))
		log.Info("jobs run across graphworker processes",
			"procs", *workerProcs, "bin", bin, "data-plane", *dataPlane)
	}
	if *joinTimeout > 0 {
		mgrOpts = append(mgrOpts, jobs.WithJoinTimeout(*joinTimeout))
	}
	if *resultTimeout > 0 {
		mgrOpts = append(mgrOpts, jobs.WithResultTimeout(*resultTimeout))
	}
	if *wallTimeout > 0 {
		mgrOpts = append(mgrOpts, jobs.WithWallTimeout(*wallTimeout))
	}
	if *maxRecoveries > 0 {
		mgrOpts = append(mgrOpts, jobs.WithRecovery(*maxRecoveries, *ckptInterval))
		log.Info("checkpoint recovery enabled", "max_recoveries", *maxRecoveries,
			"ckpt_interval", max(*ckptInterval, 1))
	}
	mgr := jobs.NewManager(cat, *workers, mgrOpts...)
	srv := server.New(cat, mgr, server.WithRegistry(reg), server.WithVersion(version))

	if *preload != "" {
		for _, name := range strings.Split(*preload, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			go func(name string) {
				t0 := time.Now()
				e, err := cat.Get(name)
				if err != nil {
					log.Warn("preload failed", "dataset", name, "err", err)
					return
				}
				g := e.CurrentGraph()
				log.Info("preloaded dataset", "dataset", name,
					"vertices", g.NumVertices(), "edges", g.NumEdges(),
					"took", time.Since(t0).Round(time.Millisecond))
			}(name)
		}
	}

	handler := srv.Handler()
	if *pprofOn {
		// mount the profile handlers explicitly so nothing is registered
		// unless asked for (the pprof import's DefaultServeMux routes are
		// unreachable — this mux never falls through to it)
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
		log.Info("profiling enabled", "path", "/debug/pprof/")
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Info("serving", "addr", *addr, "pool_workers", *workers, "sim_workers", *simWorkers)

	select {
	case <-ctx.Done():
		log.Info("shutting down")
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal("serve failed", "err", err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Warn("shutdown incomplete", "err", err)
	}
	mgr.Close()
	st := mgr.Stats()
	fmt.Printf("graphd: done (ran %d jobs: %d done, %d failed, %d cancelled)\n",
		st.Submitted, st.Done, st.Failed, st.Cancelled)
}
