// Command pregelbench regenerates the paper's result tables (IV, V, VI,
// VII) on the synthetic stand-in datasets and prints them in the
// paper's runtime/message format.
//
// Usage:
//
//	pregelbench [-scale test|bench] [-table 4|5|6|7|all]
//
// Runtime columns are simulated distributed seconds (measured compute
// wall time plus network time under the 750 Mbps cost model); msg(MB)
// counts bytes crossing worker boundaries.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	scaleFlag := flag.String("scale", "bench", "dataset scale: test or bench")
	tableFlag := flag.String("table", "all", "table to run: 4, 5, 6, 7 or all")
	flag.Parse()

	var scale harness.Scale
	switch *scaleFlag {
	case "test":
		scale = harness.ScaleTest
	case "bench":
		scale = harness.ScaleBench
	default:
		fmt.Fprintf(os.Stderr, "pregelbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	d := harness.Load(scale)
	run := func(name string) bool { return *tableFlag == "all" || *tableFlag == name }
	any := false
	if run("4") {
		harness.PrintTable(os.Stdout, "Table IV: basic implementations, pregel vs channel", harness.Table4(d))
		any = true
	}
	if run("5") {
		harness.PrintTable(os.Stdout, "Table V (top): scatter-combine channel using PR", harness.Table5ScatterCombine(d))
		harness.PrintTable(os.Stdout, "Table V (middle): request-respond channel using PJ", harness.Table5RequestRespond(d))
		harness.PrintTable(os.Stdout, "Table V (bottom): propagation channel using WCC", harness.Table5Propagation(d))
		any = true
	}
	if run("6") {
		harness.PrintTable(os.Stdout, "Table VI: S-V with channel combinations", harness.Table6(d))
		any = true
	}
	if run("7") {
		harness.PrintTable(os.Stdout, "Table VII: Min-Label SCC", harness.Table7(d))
		any = true
	}
	if !any {
		fmt.Fprintf(os.Stderr, "pregelbench: unknown table %q\n", *tableFlag)
		os.Exit(2)
	}
}
