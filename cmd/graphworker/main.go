// Command graphworker runs one process's share of a distributed
// graphd job: it loads the job's graph from a binary snapshot, rebuilds
// the partition from the owner vector embedded in it, joins the job's
// socket fabric at the coordinator's hub address, executes its hosted
// workers through the exact registry code path the in-process engines
// use, and ships its partial result back over the control connection.
//
// The hub connection is always the control plane (join, barrier,
// abort, results, cost accounting). By default it also relays the data
// frames; with -data-plane p2p the process instead opens a data
// listener, receives the hub's peer directory, and exchanges frames
// directly with every other worker process under credit-based flow
// control (-window-bytes per peer connection, default 4 MiB) — see
// internal/netcomm. With -data-plane p2p-adaptive the mesh is lazy
// (cold pairs ride the hub relay until -promote-bytes of traffic earn
// them a direct connection) and each connection's window is retuned
// per round within [-window-min, -window-max], starting from
// -window-bytes.
//
// With -trace the worker also records a per-superstep telemetry trace
// (compute time, barrier wait, flow-control send stalls, per-channel
// bytes/frames, active vertices) and piggybacks the samples on its
// partial result, so the coordinator can merge a job-wide timeline
// with the same shape as an in-process run. Diagnostics go to stderr
// as log/slog lines; when spawned by graphd, the coordinator forwards
// each line tagged with the process's worker range.
//
// graphd spawns graphworkers itself when started with -worker-procs;
// the command exists so the same protocol can cross machine boundaries:
//
//	graphworker -network tcp -connect coordinator:9000 \
//	    -snapshot web.bin -placement hash -workers 2-3 -num-workers 8 \
//	    -algorithm pagerank -engine channel
package main

import (
	"os"

	"repro/internal/workerproc"
)

func main() {
	os.Exit(workerproc.Main(os.Args[1:], os.Stderr))
}
