// Package repro reproduces "Composing Optimization Techniques for
// Vertex-Centric Graph Processing via Communication Channels" (Zhang &
// Hu, IPDPS 2019). The library lives under internal/: core is the
// channel-based system (the paper's contribution), pregel and blogel
// behaviours provide the baselines, algorithms implements the paper's
// evaluation programs behind a shared (algorithm, engine, variant)
// registry, and harness regenerates Tables IV-VII through that
// registry. The top-level bench_test.go maps each table to a testing.B
// benchmark.
//
// Beyond the batch reproduction, cmd/graphd serves the engines as a
// long-lived job service: internal/catalog caches datasets (loaded
// once, singleflight, LRU byte budget), internal/jobs runs submissions
// on a bounded worker pool, and internal/server exposes the HTTP/JSON
// /v1 API. See README.md for a curl quickstart.
package repro
