// Package repro reproduces "Composing Optimization Techniques for
// Vertex-Centric Graph Processing via Communication Channels" (Zhang &
// Hu, IPDPS 2019). The library lives under internal/: core is the
// channel-based system (the paper's contribution), pregel and blogel
// behaviours provide the baselines, algorithms implements the paper's
// evaluation programs, and harness regenerates Tables IV-VII. The
// top-level bench_test.go maps each table to a testing.B benchmark.
package repro
