// Package repro reproduces "Composing Optimization Techniques for
// Vertex-Centric Graph Processing via Communication Channels" (Zhang &
// Hu, IPDPS 2019). The library lives under internal/: core is the
// channel-based system (the paper's contribution), pregel and blogel
// behaviours provide the baselines, algorithms implements the paper's
// evaluation programs behind a shared (algorithm, engine, variant)
// registry, and harness regenerates Tables IV-VII through that
// registry. The top-level bench_test.go maps each table to a testing.B
// benchmark.
//
// Beyond the batch reproduction, cmd/graphd serves the engines as a
// long-lived job service: internal/catalog caches datasets (loaded
// once, singleflight, LRU byte budget), internal/jobs runs submissions
// on a bounded worker pool, and internal/server exposes the HTTP/JSON
// /v1 API. See README.md for a curl quickstart.
//
// The exchange fabric is dense end to end, which is the paper's central
// performance argument taken to its conclusion: every channel stages
// outgoing messages in flat per-destination-worker slots keyed by the
// remote vertex's dense local index (the partition gives every vertex a
// (owner, localIndex) pair), the wire format ships (localIndex, value)
// pairs, and receivers index straight into flat slices — no hash map is
// touched on any per-superstep send or receive path. Staging slots are
// invalidated by generation stamps rather than clearing, frame decoding
// reuses one sub-buffer per worker, and the barrier crossings of the
// exchange loop are atomic sense-reversing waits (internal/barrier), so
// the steady-state exchange path performs no allocation at all.
// tools/bench.sh snapshots the Table IV-VII benchmarks into versioned
// BENCH_<n>.json files; see the README's Performance section.
package repro
