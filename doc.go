// Package repro reproduces "Composing Optimization Techniques for
// Vertex-Centric Graph Processing via Communication Channels" (Zhang &
// Hu, IPDPS 2019). The library lives under internal/: core is the
// channel-based system (the paper's contribution), pregel and blogel
// behaviours provide the baselines, algorithms implements the paper's
// evaluation programs behind a shared (algorithm, engine, variant)
// registry, and harness regenerates Tables IV-VII through that
// registry. The top-level bench_test.go maps each table to a testing.B
// benchmark.
//
// Beyond the batch reproduction, cmd/graphd serves the engines as a
// long-lived job service: internal/catalog caches datasets (loaded
// once, singleflight, LRU byte budget), internal/jobs runs submissions
// on a bounded worker pool, and internal/server exposes the HTTP/JSON
// /v1 API. See README.md for a curl quickstart.
//
// Graphs can change while queries run. internal/live holds the
// epoch/delta design: a live graph is an immutable base CSR (an Epoch)
// plus an append-only delta log of batched edge insertions/deletions
// (last-write-wins per (src, dst) pair). Readers pin an epoch by
// refcount — a job computes over one consistent snapshot for its whole
// run and records the epoch in its metrics — while a background
// compactor merges the log into a new CSR, rebuilds the partitions and
// fragments the outgoing epoch had materialized (in parallel, with the
// same builders the static path uses), publishes the new epoch
// atomically, and retires superseded epochs the moment their last pin
// drops, releasing their bytes from the catalog budget. The same Epoch
// type also wraps every static dataset (never superseded), so view
// construction has exactly one implementation. Ingest rides POST
// /v1/datasets/{name}/edges (JSON or text edge-list bodies); running
// jobs are cancellable through the same barrier-abort path workers use
// for failure unwinding (DELETE /v1/jobs/{id}).
//
// The exchange fabric is dense end to end, which is the paper's central
// performance argument taken to its conclusion: every channel stages
// outgoing messages in flat per-destination-worker slots keyed by the
// remote vertex's dense local index (the partition gives every vertex a
// (owner, localIndex) pair), the wire format ships (localIndex, value)
// pairs, and receivers index straight into flat slices — no hash map is
// touched on any per-superstep send or receive path. Staging slots are
// invalidated by generation stamps rather than clearing, frame decoding
// reuses one sub-buffer per worker, and the barrier crossings of the
// exchange loop are atomic sense-reversing waits (internal/barrier), so
// the steady-state exchange path performs no allocation at all.
// tools/bench.sh snapshots the Table IV-VII benchmarks into versioned
// BENCH_<n>.json files; see the README's Performance section.
//
// Worker state is shared-nothing: internal/frag builds, once per
// (dataset, workers, placement), a per-worker CSR Fragment whose
// adjacency entries are packed pre-resolved addresses — destination
// worker in the high 32 bits of one word, destination local index in
// the low 32 — so during supersteps a worker never touches the global
// graph or the partition's Owner/LocalIndex arrays. Algorithms iterate
// Worker.Frag().Neighbors(li) and hand the packed addresses straight to
// the channels (Send/AddAddr/Request), replacing two dependent random
// lookups per edge with a sequential scan; the raw address order equals
// (worker, local) order, which is what ScatterCombine's presort radix
// sorts on. The id-based channel APIs remain as thin resolving wrappers
// for dynamic destinations (pointer chases, request targets). Because a
// fragment plus its channels is the complete per-worker state, workers
// no longer need any shared mutable structure — the stepping stone to
// running them in separate processes. Fragments are cached by the
// catalog per (dataset, workers, placement) view, charged to its LRU
// byte budget, and binary snapshots (version 2) can embed named owner
// vectors so a daemon restart skips re-partitioning.
//
// That stepping stone is now crossed: the transport is pluggable behind
// two seams, and workers really do run in separate processes. The
// comm.Fabric interface (per-worker endpoints: serialize into Out,
// Flush, read In, Release) carries the data plane and barrier.Barrier
// (Wait + AllReduce, a crossing that also sums one 64-bit word from
// every worker) the control plane; the engines ship their shared state
// — exchange-round again-flags, active counts, stop votes — inside the
// reduce word, so no engine or channel code reads another worker's
// memory. The in-process implementations keep the zero-copy buffer
// matrix and the atomic sense-reversing barrier (two crossings per
// exchange round); internal/netcomm implements the same contract as
// length-prefixed frames over TCP/Unix sockets in a star around a hub
// that routes frames, releases barrier crossings with the aggregated
// reduce value, charges the simulated cost model from per-flush
// reports, and turns a dropped connection into a job-wide barrier
// abort. cmd/graphworker (internal/workerproc) is the worker process:
// it rebuilds graph, partition and fragments from a binary snapshot
// with an embedded owner vector, joins the hub, runs the registry code
// path unchanged, and ships a compact partial result merged by vertex
// ownership at the coordinator. graphd -worker-procs N runs every job
// this way; the equivalence sweep pins the whole stack to
// oracle-identical results across processes, placements, engines and
// variants, and killing a worker process mid-superstep fails the job
// with a joined error rather than a hang.
//
// The socket fabric splits control plane from data plane. The hub
// connection is always the control plane — join, barrier releases,
// abort, flush reports, results — and by default also relays the data
// frames (the star: every byte crosses the network twice). With
// -data-plane p2p the hub instead broadcasts a directory of per-process
// data listeners once the party has joined, each process pair dials one
// direct connection, and frames flow point-to-point under credit-based
// flow control: receivers grant -window-bytes of credit per connection
// (default 4 MiB), staged frames replenish it in quarter-window
// batches, and a sender whose credit is exhausted blocks in Flush —
// bounding its in-flight memory at max(window, one frame) where the hub
// plane's buffering grows with the rate mismatch. Round delivery is
// ordered by per-flush DONE markers (the release no longer proves
// frames arrived, since it travels a different socket). Flush reports
// still go to the hub, so cost accounting and Stats are identical
// across planes; the equivalence sweep and fault matrix run on both.
// -data-plane p2p-adaptive drops the static mesh's two up-front bets:
// each connection's window is retuned per sender round by a
// receiver-owned AIMD-style controller (stalled or window-overflowing
// rounds double it, consecutive mostly-idle rounds halve it toward
// twice the observed round volume, bounded by -window-min/-window-max,
// with resizes travelling as control frames that preserve in-flight
// credit), and the mesh is lazy — no pair is dialed up front; cold
// pairs relay through the hub and a pair is promoted to a direct
// connection once -promote-bytes of relayed volume proves it hot, with
// frames latching onto one route per worker per round so promotion
// never splits a round. Skewed placement-aware workloads thus pay
// window memory and connections only for their hot pairs, and a hot
// flow grows out of a too-small initial window instead of staying
// window-bound.
//
// Observability reaches below the superstep trace to the flow level.
// Every job accumulates an obs.FlowAccum — a dense (src, dst) matrix
// recorded lock-free at the fabrics' flush seam (in-process: the
// exchanger's FinishSerialize; sockets: the client's Flush), plus
// per-connection credit-window stats on the p2p plane (stall time,
// grant latency) and per-process relay stats on the hub — served as
// GET /v1/jobs/{id}/flows with an identical shape on every plane.
// Worker processes ship their matrix share piggybacked on the result
// blobs, and only a successful attempt contributes, so recovery never
// double-counts. State transitions and completed supersteps stream as
// Server-Sent Events from /v1/jobs/{id}/events: distributed workers
// send each superstep sample over the hub control connection as it
// completes, the job's trace fires a step event exactly once when the
// last worker's sample lands (idempotent across recovery replays), and
// per-job sequence numbers let a slow consumer detect drops.
// obs.Diagnose correlates trace, flows and metrics into
// /v1/jobs/{id}/diagnosis: straggler ranking by barrier-wait deficit
// against a fleet-common time denominator (so a worker whose time
// vanished outside the instrumented regions still stands out), with
// cause attribution; window-bound p2p connections by stall fraction of
// superstep time; compute imbalance against the placement's edge cut;
// and hub relay hotspots — each finding carrying its threshold, the
// measured value and a recommendation.
package repro
