#!/usr/bin/env bash
# bench.sh — run the Table IV–VII reproduction benchmarks and emit a
# machine-readable BENCH_<n>.json snapshot in the repo root.
#
# Usage:
#   tools/bench.sh [bench-regex]
#
# Environment:
#   BENCHTIME  per-benchmark -benchtime (default 20x)
#   COUNT      -count repetitions; the best (min ns/op) run per benchmark
#              is recorded, which is the stable statistic for short
#              benchmarks (default 5)
#   OUT        output file; default BENCH_<n>.json with the first free n
#
# Each entry in "results" holds the benchmark name (GOMAXPROCS suffix
# stripped), iterations, ns/op, and every auxiliary metric the benchmark
# reports (sim-ms/op, msgMB/op, steps/op, B/op, allocs/op, ...).
# Successive snapshots (BENCH_0.json, BENCH_1.json, ...) form the
# benchmark trajectory of the repo; compare any two with e.g.
#   jq -r '.results[] | [.name, .["ns/op"]] | @tsv' BENCH_0.json
set -euo pipefail

cd "$(dirname "$0")/.."

REGEX="${1:-^BenchmarkTable[4-7]$}"
BENCHTIME="${BENCHTIME:-20x}"
COUNT="${COUNT:-5}"

if [ -z "${OUT:-}" ]; then
  n=0
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
  OUT="BENCH_${n}.json"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running: go test -run=NONE -bench \"$REGEX\" -benchtime=$BENCHTIME -count=$COUNT ." >&2
go test -run=NONE -bench "$REGEX" -benchtime="$BENCHTIME" -count="$COUNT" . | tee "$raw" >&2

awk -v benchtime="$BENCHTIME" -v count="$COUNT" -v regex="$REGEX" '
BEGIN {
  cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
  gv = ""
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
  iters = $2 + 0
  ns = -1
  line = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    val = $i + 0; unit = $(i + 1)
    if (unit == "ns/op") ns = val
    gsub(/"/, "", unit)
    line = line sprintf("%s\"%s\": %s", (line == "" ? "" : ", "), unit, val)
  }
  if (ns < 0) next
  if (!(name in best) || ns < bestNs[name]) {
    bestNs[name] = ns
    best[name] = sprintf("{\"name\": \"%s\", \"iterations\": %d, %s}", name, iters, line)
  }
  if (!(name in seen)) { order[++norder] = name; seen[name] = 1 }
}
END {
  printf "{\n"
  printf "  \"generated\": \"%s\",\n", ts
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
  printf "  \"cpu\": \"%s\",\n", cpu
  printf "  \"bench_regex\": \"%s\", \"benchtime\": \"%s\", \"count\": %d,\n", regex, benchtime, count
  printf "  \"results\": [\n"
  for (i = 1; i <= norder; i++)
    printf "    %s%s\n", best[order[i]], (i < norder ? "," : "")
  printf "  ]\n}\n"
}
' "$raw" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
