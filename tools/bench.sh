#!/usr/bin/env bash
# bench.sh — run the Table IV–VII reproduction benchmarks plus the
# pinned channel microbenchmarks and emit a machine-readable
# BENCH_<n>.json snapshot in the repo root.
#
# Usage:
#   tools/bench.sh [bench-regex]          run benches, write snapshot,
#                                         print a delta summary vs the
#                                         previous snapshot
#   tools/bench.sh --check [old] [new]    compare two snapshots only;
#                                         exit 1 if any benchmark
#                                         matching PIN_REGEX regressed
#                                         more than MAX_REGRESSION_PCT
#                                         (defaults: the two
#                                         highest-numbered BENCH_*.json)
#
# Environment:
#   BENCHTIME  per-benchmark -benchtime (default 20x)
#   COUNT      -count repetitions; the best (min ns/op) run per benchmark
#              is recorded, which is the stable statistic for short
#              benchmarks (default 5)
#   OUT        output file; default BENCH_<n>.json with the first free n
#   BASE       snapshot to diff against (default: highest-numbered
#              BENCH_*.json other than OUT)
#   PIN_REGEX  benchmarks gated by --check (default: the channel
#              microbenchmarks of internal/channel)
#   MAX_REGRESSION_PCT  --check failure threshold (default 20)
#
# Each entry in "results" holds the benchmark name (GOMAXPROCS suffix
# stripped), iterations, ns/op, and every auxiliary metric the benchmark
# reports (sim-ms/op, msgMB/op, steps/op, B/op, allocs/op, ...).
# Successive snapshots (BENCH_0.json, BENCH_1.json, ...) form the
# benchmark trajectory of the repo; compare any two with e.g.
#   tools/bench.sh --check BENCH_1.json BENCH_2.json
set -euo pipefail

cd "$(dirname "$0")/.."

PIN_REGEX="${PIN_REGEX:-^Benchmark(DirectMessageRing|CombinedMessageFanIn|ScatterCombineRing|AggregatorSum|RequestRespondHub|PropagationPath|MirrorHubBroadcast|LiveIngest|LiveCompact|LivePinRelease|TraceObserverOff|FlowStatsOff|DistributedExchange/(hub|p2p|p2p-adaptive|skew/(p2p|p2p-adaptive)))$}"
MAX_REGRESSION_PCT="${MAX_REGRESSION_PCT:-20}"

# latest_snapshots prints the two highest-numbered BENCH_<n>.json files
# (old then new), or fewer if they do not exist.
latest_snapshots() {
  ls BENCH_*.json 2>/dev/null | sed 's/BENCH_\([0-9]*\)\.json/\1 &/' | sort -n | awk '{print $2}' | tail -2
}

# extract FILE — print "name<TAB>ns/op" for every result in a snapshot
# (no jq dependency: the writer emits one result object per line).
extract() {
  grep -o '{"name": "[^"]*", "iterations": [0-9]*, [^}]*}' "$1" |
    sed 's/{"name": "\([^"]*\)".*"ns\/op": \([0-9.e+]*\).*/\1\t\2/'
}

# cpu_of FILE — the snapshot's recorded cpu model.
cpu_of() {
  sed -n 's/^  "cpu": "\(.*\)",$/\1/p' "$1" | head -1
}

# delta OLD NEW MODE — print ns/op deltas for benchmarks common to both
# snapshots; in MODE=check, exit 1 on pinned regressions — unless the
# snapshots were recorded on different CPUs, where ns/op is not
# comparable and the gate downgrades to a warning.
delta() {
  local old="$1" new="$2" mode="$3"
  if [ "$mode" = check ] && [ "$(cpu_of "$old")" != "$(cpu_of "$new")" ]; then
    echo "WARNING: $old and $new were recorded on different CPUs; ns/op not comparable, skipping regression gate" >&2
    mode=summary
  fi
  extract "$old" >"/tmp/bench_old.$$"
  extract "$new" >"/tmp/bench_new.$$"
  awk -F'\t' -v mode="$mode" -v pin="$PIN_REGEX" -v maxpct="$MAX_REGRESSION_PCT" -v oldf="$old" -v newf="$new" '
    NR == FNR { base[$1] = $2; next }
    {
      cur[$1] = $2
      if (!($1 in base)) { fresh[++nfresh] = $1; next }
      order[++n] = $1
    }
    END {
      printf "delta %s -> %s (ns/op):\n", oldf, newf
      bad = 0
      for (i = 1; i <= n; i++) {
        name = order[i]
        pct = (cur[name] - base[name]) / base[name] * 100
        flag = ""
        if (name ~ pin) {
          flag = " [pinned]"
          if (pct > maxpct) { flag = flag " REGRESSION"; bad++ }
        }
        printf "  %-55s %12.0f -> %12.0f  %+7.1f%%%s\n", name, base[name], cur[name], pct, flag
      }
      for (i = 1; i <= nfresh; i++)
        printf "  %-55s %12s -> %12.0f      new\n", fresh[i], "-", cur[fresh[i]]
      missing = 0
      for (name in base) {
        if (name in cur) continue
        flag = ""
        if (name ~ pin) { flag = " [pinned] MISSING"; missing++ }
        printf "  %-55s %12.0f -> %12s      removed%s\n", name, base[name], "-", flag
      }
      if (mode == "check") {
        if (bad > 0 || missing > 0) {
          printf "FAIL: %d pinned benchmark(s) regressed more than %s%%, %d missing from the newer snapshot\n", bad, maxpct, missing
          exit 1
        }
        printf "OK: no pinned benchmark regressed more than %s%% or went missing\n", maxpct
      }
    }
  ' "/tmp/bench_old.$$" "/tmp/bench_new.$$" && rc=0 || rc=$?
  rm -f "/tmp/bench_old.$$" "/tmp/bench_new.$$"
  return "$rc"
}

if [ "${1:-}" = "--check" ]; then
  old="${2:-}"
  new="${3:-}"
  if [ -z "$old" ] || [ -z "$new" ]; then
    set -- $(latest_snapshots)
    if [ $# -lt 2 ]; then
      echo "bench.sh --check: need two BENCH_<n>.json snapshots" >&2
      exit 0 # nothing to compare yet: not a failure
    fi
    old="$1"; new="$2"
  fi
  delta "$old" "$new" check && exit 0 || exit 1
fi

REGEX="${1:-^(BenchmarkTable[4-7]|BenchmarkDirectMessageRing|BenchmarkCombinedMessageFanIn|BenchmarkScatterCombineRing|BenchmarkAggregatorSum|BenchmarkRequestRespondHub|BenchmarkPropagationPath|BenchmarkMirrorHubBroadcast|BenchmarkLiveIngest|BenchmarkLiveCompact|BenchmarkLivePinRelease|BenchmarkTraceObserverOff|BenchmarkTraceObserverOn|BenchmarkFlowStatsOff|BenchmarkFlowStatsOn|BenchmarkCheckpoint|BenchmarkDistributedExchange)$}"
BENCHTIME="${BENCHTIME:-20x}"
COUNT="${COUNT:-5}"

if [ -z "${OUT:-}" ]; then
  n=0
  while [ -e "BENCH_${n}.json" ]; do n=$((n + 1)); done
  OUT="BENCH_${n}.json"
fi
if [ -z "${BASE:-}" ]; then
  BASE="$(ls BENCH_*.json 2>/dev/null | grep -vx "$OUT" | sed 's/BENCH_\([0-9]*\)\.json/\1 &/' | sort -n | awk '{print $2}' | tail -1 || true)"
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "running: go test -run=NONE -bench \"$REGEX\" -benchtime=$BENCHTIME -count=$COUNT . ./internal/channel ./internal/live ./internal/algorithms" >&2
go test -run=NONE -bench "$REGEX" -benchtime="$BENCHTIME" -count="$COUNT" . ./internal/channel ./internal/live ./internal/algorithms | tee "$raw" >&2

awk -v benchtime="$BENCHTIME" -v count="$COUNT" -v regex="$REGEX" '
BEGIN {
  cmd = "date -u +%Y-%m-%dT%H:%M:%SZ"; cmd | getline ts; close(cmd)
  gv = ""
}
/^goos:/ { goos = $2 }
/^goarch:/ { goarch = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
  name = $1
  sub(/-[0-9]+$/, "", name)  # strip GOMAXPROCS suffix
  iters = $2 + 0
  ns = -1
  line = ""
  for (i = 3; i + 1 <= NF; i += 2) {
    val = $i + 0; unit = $(i + 1)
    if (unit == "ns/op") ns = val
    gsub(/"/, "", unit)
    line = line sprintf("%s\"%s\": %s", (line == "" ? "" : ", "), unit, val)
  }
  if (ns < 0) next
  if (!(name in best) || ns < bestNs[name]) {
    bestNs[name] = ns
    best[name] = sprintf("{\"name\": \"%s\", \"iterations\": %d, %s}", name, iters, line)
  }
  if (!(name in seen)) { order[++norder] = name; seen[name] = 1 }
}
END {
  printf "{\n"
  printf "  \"generated\": \"%s\",\n", ts
  printf "  \"goos\": \"%s\", \"goarch\": \"%s\",\n", goos, goarch
  printf "  \"cpu\": \"%s\",\n", cpu
  printf "  \"bench_regex\": \"%s\", \"benchtime\": \"%s\", \"count\": %d,\n", regex, benchtime, count
  printf "  \"results\": [\n"
  for (i = 1; i <= norder; i++)
    printf "    %s%s\n", best[order[i]], (i < norder ? "," : "")
  printf "  ]\n}\n"
}
' "$raw" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
if [ -n "$BASE" ] && [ -e "$BASE" ]; then
  delta "$BASE" "$OUT" summary >&2
fi
